// Package compiler lowers Cinnamon's polynomial IR to per-chip limb-level
// instruction streams (paper Fig. 7 ④–⑦) and allocates registers with
// Belady's MIN policy (§4.4). Concurrent DSL streams are placed on disjoint
// chip groups (program-level parallelism, Fig. 7 ③); within a group, limbs
// are partitioned modularly (limb-level parallelism, §4.3.1); keyswitches
// expand per the algorithm the keyswitch pass chose, including the batched
// input-broadcast and output-aggregation forms.
package compiler

import (
	"fmt"

	"cinnamon/internal/ckks"
	"cinnamon/internal/limbir"
	"cinnamon/internal/polyir"
	"cinnamon/internal/rns"
)

// ctVal locates a ciphertext's limbs: vals[part][chainIdx] is the virtual
// value on the owning chip of the ciphertext's stream group. All
// node-boundary values are in the NTT domain.
type ctVal struct {
	level  int
	stream int
	vals   [2][]limbir.Value
}

// Lowerer holds lowering state.
type Lowerer struct {
	params    *ckks.Parameters
	nChips    int
	streams   int
	groupSize int
	mod       *limbir.Module
	vals      map[int]*ctVal
	tag       int
	skip      map[int]bool               // nodes folded into an aggregation macro
	sinks     map[int]*polyir.BatchGroup // sink node ID -> OA group
	member    map[int]bool               // rotation node IDs inside OA groups
	bcasts    map[int]*broadcastCache    // IB batch id -> cached broadcast
	groups    map[int]*polyir.BatchGroup // batch id -> group
	symCache  []map[string]limbir.Value  // per-chip: symbol -> loaded value (load CSE)
}

// broadcastCache holds the coefficient-domain copies of a broadcast
// polynomial on every chip of a group: limbs[chip][chainIdx] (indexed by
// absolute chip id; only group members are populated).
type broadcastCache struct {
	limbs [][]limbir.Value
}

// Lower compiles the graph for nChips chips. groups are the keyswitch-pass
// batches (may be nil for single-chip programs). The graph's stream count
// must divide nChips; each stream runs on its own chip group.
func Lower(g *polyir.Graph, params *ckks.Parameters, nChips int, groups []polyir.BatchGroup) (*limbir.Module, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.Streams < 1 || nChips%g.Streams != 0 {
		return nil, fmt.Errorf("compiler: %d streams do not evenly divide %d chips", g.Streams, nChips)
	}
	lo := &Lowerer{
		params:    params,
		nChips:    nChips,
		streams:   g.Streams,
		groupSize: nChips / g.Streams,
		mod:       limbir.NewModule(nChips),
		vals:      map[int]*ctVal{},
		skip:      map[int]bool{},
		sinks:     map[int]*polyir.BatchGroup{},
		member:    map[int]bool{},
		bcasts:    map[int]*broadcastCache{},
		groups:    map[int]*polyir.BatchGroup{},
		symCache:  make([]map[string]limbir.Value, nChips),
	}
	for c := range lo.symCache {
		lo.symCache[c] = map[string]limbir.Value{}
	}
	for i := range groups {
		grp := &groups[i]
		lo.groups[grp.ID] = grp
		if grp.Algorithm == polyir.KSOutputAggregation && grp.Sink != nil {
			lo.sinks[grp.Sink.ID] = grp
			for _, n := range grp.Nodes {
				lo.member[n.ID] = true
			}
			lo.markFolded(g, grp)
		}
	}
	for _, n := range g.Nodes {
		if lo.skip[n.ID] || lo.member[n.ID] {
			continue
		}
		if grp, ok := lo.sinks[n.ID]; ok {
			if err := lo.lowerAggregationSink(g, n, grp); err != nil {
				return nil, err
			}
			continue
		}
		if err := lo.lowerNode(n); err != nil {
			return nil, err
		}
	}
	if err := lo.mod.Validate(); err != nil {
		return nil, err
	}
	return lo.mod, nil
}

// markFolded marks the adds strictly inside the sink's add-tree as skipped.
func (lo *Lowerer) markFolded(g *polyir.Graph, grp *polyir.BatchGroup) {
	var walk func(n *polyir.Node)
	walk = func(n *polyir.Node) {
		if n.Kind != polyir.OpAdd {
			return
		}
		for _, a := range n.Args {
			if a.Kind == polyir.OpAdd && a.Uses() == 1 {
				lo.skip[a.ID] = true
				walk(a)
			}
		}
	}
	walk(grp.Sink)
}

// group returns the chip ids of a stream's group.
func (lo *Lowerer) group(stream int) []int {
	base := stream * lo.groupSize
	out := make([]int, lo.groupSize)
	for i := range out {
		out[i] = base + i
	}
	return out
}

// chipFor returns the chip owning chain limb j within a stream's group.
func (lo *Lowerer) chipFor(j, stream int) int {
	return stream*lo.groupSize + j%lo.groupSize
}

func (lo *Lowerer) prog(chip int) *limbir.Program { return lo.mod.Chips[chip] }

func (lo *Lowerer) newCt(level, stream int) *ctVal {
	v := &ctVal{level: level, stream: stream}
	for p := 0; p < 2; p++ {
		v.vals[p] = make([]limbir.Value, level+1)
	}
	return v
}

func (lo *Lowerer) modulus(j int) uint64 { return lo.params.QBasis.Moduli[j] }

// loadSym emits (or reuses) a Load of a read-only symbol on a chip.
// Evaluation-key and plaintext limbs recur across keyswitches; reusing one
// SSA value lets the Belady allocator keep hot limbs resident exactly when
// the register file has capacity — the cache-size effect of paper Fig. 6.
func (lo *Lowerer) loadSym(chip int, sym string) limbir.Value {
	if v, ok := lo.symCache[chip][sym]; ok {
		return v
	}
	pr := lo.prog(chip)
	v := pr.NewValue()
	pr.Emit(limbir.Instr{Op: limbir.Load, Dst: v, Sym: sym})
	lo.symCache[chip][sym] = v
	return v
}

func (lo *Lowerer) argVals(n *polyir.Node) ([]*ctVal, error) {
	out := make([]*ctVal, len(n.Args))
	for i, a := range n.Args {
		v := lo.vals[a.ID]
		if v == nil {
			return nil, fmt.Errorf("compiler: node %d uses unlowered node %d", n.ID, a.ID)
		}
		out[i] = v
	}
	for _, v := range out[1:] {
		if v.stream != out[0].stream {
			return nil, fmt.Errorf("compiler: node %d mixes streams %d and %d (cross-stream ops are not supported)",
				n.ID, out[0].stream, v.stream)
		}
	}
	return out, nil
}

// lowerNode handles all non-macro nodes.
func (lo *Lowerer) lowerNode(n *polyir.Node) error {
	switch n.Kind {
	case polyir.OpInput:
		lo.vals[n.ID] = lo.loadCt(n.Name, n.Level, n.Stream)
		return nil
	case polyir.OpOutput:
		args, err := lo.argVals(n)
		if err != nil {
			return err
		}
		src := args[0]
		for p := 0; p < 2; p++ {
			for j := 0; j <= src.level; j++ {
				c := lo.chipFor(j, src.stream)
				lo.prog(c).Emit(limbir.Instr{
					Op: limbir.Store, Srcs: []limbir.Value{src.vals[p][j]},
					Sym: fmt.Sprintf("out:%s:%d:m%d", n.Name, p, lo.modulus(j)),
				})
			}
		}
		return nil
	case polyir.OpAdd, polyir.OpSub:
		args, err := lo.argVals(n)
		if err != nil {
			return err
		}
		op := limbir.Add
		if n.Kind == polyir.OpSub {
			op = limbir.Sub
		}
		a, b := args[0], args[1]
		out := lo.newCt(a.level, a.stream)
		for p := 0; p < 2; p++ {
			for j := 0; j <= a.level; j++ {
				pr := lo.prog(lo.chipFor(j, a.stream))
				out.vals[p][j] = pr.NewValue()
				pr.Emit(limbir.Instr{Op: op, Dst: out.vals[p][j],
					Srcs: []limbir.Value{a.vals[p][j], b.vals[p][j]}, Mod: lo.modulus(j)})
			}
		}
		lo.vals[n.ID] = out
		return nil
	case polyir.OpNeg:
		args, err := lo.argVals(n)
		if err != nil {
			return err
		}
		a := args[0]
		out := lo.newCt(a.level, a.stream)
		for p := 0; p < 2; p++ {
			for j := 0; j <= a.level; j++ {
				pr := lo.prog(lo.chipFor(j, a.stream))
				out.vals[p][j] = pr.NewValue()
				pr.Emit(limbir.Instr{Op: limbir.Neg, Dst: out.vals[p][j],
					Srcs: []limbir.Value{a.vals[p][j]}, Mod: lo.modulus(j)})
			}
		}
		lo.vals[n.ID] = out
		return nil
	case polyir.OpMulPlain, polyir.OpAddPlain:
		args, err := lo.argVals(n)
		if err != nil {
			return err
		}
		a := args[0]
		out := lo.newCt(a.level, a.stream)
		for j := 0; j <= a.level; j++ {
			c := lo.chipFor(j, a.stream)
			pr := lo.prog(c)
			pt := lo.loadSym(c, fmt.Sprintf("pt:%s:m%d", n.Name, lo.modulus(j)))
			for p := 0; p < 2; p++ {
				if n.Kind == polyir.OpAddPlain && p == 1 {
					out.vals[1][j] = a.vals[1][j]
					continue
				}
				op := limbir.Mul
				if n.Kind == polyir.OpAddPlain {
					op = limbir.Add
				}
				out.vals[p][j] = pr.NewValue()
				pr.Emit(limbir.Instr{Op: op, Dst: out.vals[p][j],
					Srcs: []limbir.Value{a.vals[p][j], pt}, Mod: lo.modulus(j)})
			}
		}
		lo.vals[n.ID] = out
		return nil
	case polyir.OpDropLevel:
		args, err := lo.argVals(n)
		if err != nil {
			return err
		}
		a := args[0]
		out := &ctVal{level: n.DropTo, stream: a.stream}
		out.vals[0] = a.vals[0][:n.DropTo+1]
		out.vals[1] = a.vals[1][:n.DropTo+1]
		lo.vals[n.ID] = out
		return nil
	case polyir.OpRescale:
		args, err := lo.argVals(n)
		if err != nil {
			return err
		}
		lo.vals[n.ID], err = lo.lowerRescale(args[0])
		return err
	case polyir.OpRotate, polyir.OpConjugate:
		return lo.lowerRotation(n)
	case polyir.OpMulCt:
		return lo.lowerMulCt(n)
	case polyir.OpBootstrap:
		return fmt.Errorf("compiler: bootstrap nodes are composed at the workload level, not lowered functionally")
	default:
		return fmt.Errorf("compiler: cannot lower %v", n.Kind)
	}
}

func (lo *Lowerer) loadCt(name string, level, stream int) *ctVal {
	out := lo.newCt(level, stream)
	for p := 0; p < 2; p++ {
		for j := 0; j <= level; j++ {
			out.vals[p][j] = lo.loadSym(lo.chipFor(j, stream), fmt.Sprintf("ct:%s:%d:m%d", name, p, lo.modulus(j)))
		}
	}
	return out
}

// lowerRescale implements the level drop: broadcast the last limb (in the
// coefficient domain) within the group, then each chip computes
// (a_j − [a_l]_{q_j}) · q_l⁻¹ for its limbs.
func (lo *Lowerer) lowerRescale(a *ctVal) (*ctVal, error) {
	l := a.level
	ql := lo.modulus(l)
	grp := lo.group(a.stream)
	out := lo.newCt(l-1, a.stream)
	for p := 0; p < 2; p++ {
		ownerChip := lo.chipFor(l, a.stream)
		ownerPr := lo.prog(ownerChip)
		lastCoeff := ownerPr.NewValue()
		ownerPr.Emit(limbir.Instr{Op: limbir.INTT, Dst: lastCoeff,
			Srcs: []limbir.Value{a.vals[p][l]}, Mod: ql})
		lo.tag++
		bcopy := map[int]limbir.Value{}
		for _, c := range grp {
			pr := lo.prog(c)
			bcopy[c] = pr.NewValue()
			in := limbir.Instr{Op: limbir.Bcast, Dst: bcopy[c], Tag: lo.tag, Owner: ownerChip, Mod: ql, Chips: grp}
			if c == ownerChip {
				in.Srcs = []limbir.Value{lastCoeff}
			}
			pr.Emit(in)
		}
		for j := 0; j < l; j++ {
			c := lo.chipFor(j, a.stream)
			pr := lo.prog(c)
			qj := lo.modulus(j)
			aj := pr.NewValue()
			pr.Emit(limbir.Instr{Op: limbir.INTT, Dst: aj, Srcs: []limbir.Value{a.vals[p][j]}, Mod: qj})
			red := pr.NewValue()
			pr.Emit(limbir.Instr{Op: limbir.BConv, Dst: red,
				Srcs: []limbir.Value{bcopy[c]}, SrcMods: []uint64{ql}, Mod: qj})
			diff := pr.NewValue()
			pr.Emit(limbir.Instr{Op: limbir.Sub, Dst: diff, Srcs: []limbir.Value{aj, red}, Mod: qj})
			scaled := pr.NewValue()
			pr.Emit(limbir.Instr{Op: limbir.MulScalar, Dst: scaled,
				Srcs: []limbir.Value{diff}, Mod: qj, Scalar: rns.InvMod(ql%qj, qj)})
			out.vals[p][j] = pr.NewValue()
			pr.Emit(limbir.Instr{Op: limbir.NTT, Dst: out.vals[p][j], Srcs: []limbir.Value{scaled}, Mod: qj})
		}
	}
	return out, nil
}
