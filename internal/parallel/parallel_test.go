package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
		var p Pool
		p.SetWorkers(4)
		seen := make([]atomic.Int32, n)
		p.For(n, func(i int) { seen[i].Add(1) })
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, got)
			}
		}
	}
}

func TestForSerialWithOneWorker(t *testing.T) {
	var p Pool
	p.SetWorkers(1)
	order := make([]int, 0, 16)
	p.For(16, func(i int) { order = append(order, i) }) // no locking: must be serial
	for i, v := range order {
		if v != i {
			t.Fatalf("serial execution out of order: %v", order)
		}
	}
}

func TestWorkersDefaultTracksGOMAXPROCS(t *testing.T) {
	var p Pool
	if got, want := p.Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers() = %d, want GOMAXPROCS %d", got, want)
	}
	p.SetWorkers(3)
	if got := p.Workers(); got != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", got)
	}
	p.SetWorkers(0)
	if got, want := p.Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers() = %d after reset, want %d", got, want)
	}
}

func TestHelperBudgetIsBounded(t *testing.T) {
	var p Pool
	p.SetWorkers(4)
	var peak, cur atomic.Int32
	var wg sync.WaitGroup
	// Many concurrent For calls must never exceed callers + (workers-1)
	// total goroutines inside fn.
	const callers = 8
	wg.Add(callers)
	for c := 0; c < callers; c++ {
		go func() {
			defer wg.Done()
			p.For(64, func(i int) {
				n := cur.Add(1)
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				cur.Add(-1)
			})
		}()
	}
	wg.Wait()
	if got, limit := peak.Load(), int32(callers+3); got > limit {
		t.Fatalf("peak concurrency %d exceeds callers+helpers bound %d", got, limit)
	}
	if h := p.helpers.Load(); h != 0 {
		t.Fatalf("helper budget leaked: %d still held", h)
	}
}

func TestForPropagatesPanic(t *testing.T) {
	var p Pool
	p.SetWorkers(4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic to propagate")
		}
		if h := p.helpers.Load(); h != 0 {
			t.Fatalf("helper budget leaked after panic: %d", h)
		}
	}()
	p.For(64, func(i int) {
		if i == 5 {
			panic("boom")
		}
	})
}

func TestNestedForCompletes(t *testing.T) {
	var p Pool
	p.SetWorkers(4)
	var total atomic.Int64
	p.For(8, func(i int) {
		p.For(8, func(j int) { total.Add(1) })
	})
	if total.Load() != 64 {
		t.Fatalf("nested For ran %d iterations, want 64", total.Load())
	}
}
