// Package parallel provides the bounded fork-join worker pool behind the
// software limb parallelism of the numeric stack. The Cinnamon paper's
// core observation (§2-§4) is that FHE work decomposes into independent
// limbs; on CPU the same decomposition maps onto goroutines striped over
// the limb index. Every limb loop in internal/ring, internal/rns and
// internal/keyswitch funnels through For, so one process-wide knob trades
// intra-op parallelism against request-level parallelism in the serving
// runtime.
//
// Design constraints, in order:
//
//   - Bounded: across all concurrent For calls at most Workers()-1 helper
//     goroutines exist, so nested parallelism (a keyswitch chip loop whose
//     ring ops are themselves parallel) and concurrent serving requests
//     cannot oversubscribe the machine. The caller always participates,
//     which also guarantees progress when the helper budget is exhausted.
//   - Adaptive: the default worker count is runtime.GOMAXPROCS(0) read at
//     call time, so `go test -cpu 1,4` and runtime.GOMAXPROCS changes take
//     effect without reconfiguration; with one worker every call is a plain
//     serial loop with zero synchronization.
//   - Dynamic: iterations are claimed from an atomic counter, so uneven
//     per-limb cost (e.g. NTT limbs racing base-conversion limbs) balances
//     automatically.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// MinCoeffs is the per-limb element count below which callers should prefer
// their serial loop: spawning a helper costs on the order of a microsecond,
// which a limb of fewer coefficients does not amortize. The ring and rns
// layers gate on this before calling For.
const MinCoeffs = 2048

// Cost classes: relative per-coefficient cost of a limb loop, in
// add-equivalents. Fan-out decisions weigh the element count by the op's
// class so that a cheap gather (automorphism) and an NTT are not gated by
// the same element threshold.
const (
	// CostLight covers add/sub/neg, copies and pure gathers (~1 ns/elem).
	CostLight = 1
	// CostMul covers one modular multiply per coefficient (pointwise
	// multiply, mod-down combine, rescale, scalar multiply).
	CostMul = 4
	// CostNTT covers the log N butterfly chain of a transform.
	CostNTT = 16
)

// MinWork is the weighted per-limb work (elements × cost class) below which
// fanning a limb out to a helper goroutine costs more than it saves. With
// the classes above it admits an NTT limb at N ≥ 4096 and a pointwise
// multiply at N ≥ 8192, while keeping small ops (automorphism, add) serial —
// the small-op dispatch regression BENCH_core.json measured at workers=4.
const MinWork = 32768

// WorthFanout reports whether a limb loop of `limbs` limbs, n coefficients
// each, at the given cost class, carries enough total work (limbs×n×cost)
// and enough per-limb work (n×cost) to benefit from the pool. Per-limb N
// alone is not the criterion: a one-limb op never fans out, and a cheap
// op class needs proportionally more coefficients.
func WorthFanout(limbs, n, cost int) bool {
	return limbs > 1 && n*cost >= MinWork && limbs*n*cost >= 2*MinWork
}

// WorthFanoutWide is WorthFanout for loops whose per-task work is large
// but whose task count may be tiny (e.g. the mod-up base conversion
// accumulating into 2 extension limbs, each a CostMul×chain-limbs sweep).
// WorthFanout admits such loops on total work alone, but with fewer tasks
// than workers the fork-join barrier leaves most of the pool idle while
// still paying spawn-and-wait overhead — BENCH_core.json measured the
// result as a 0.94× *slowdown* at 4 workers. Wide gating additionally
// requires at least one task per worker so the pool is actually filled.
func WorthFanoutWide(tasks, n, cost int) bool {
	return tasks >= Workers() && WorthFanout(tasks, n, cost)
}

// Pool is a bounded fork-join executor. The zero value is ready to use and
// sizes itself to GOMAXPROCS. A Pool has no background goroutines: helpers
// are spawned per call and bounded by a shared budget, so an idle pool costs
// nothing.
type Pool struct {
	workers atomic.Int32 // configured size; 0 means GOMAXPROCS at call time
	helpers atomic.Int32 // helper goroutines currently running
}

// Default is the process-wide pool used by the package-level functions and
// by the numeric stack.
var Default = &Pool{}

// SetWorkers fixes the pool size. n <= 0 restores the GOMAXPROCS default.
func (p *Pool) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	p.workers.Store(int32(n))
}

// Workers returns the effective pool size for a call made now.
func (p *Pool) Workers() int {
	if w := p.workers.Load(); w > 0 {
		return int(w)
	}
	return runtime.GOMAXPROCS(0)
}

// For runs fn(i) for every i in [0, n), distributing iterations over up to
// Workers() goroutines (including the caller). It returns when all n
// iterations have completed. fn must be safe for concurrent invocation with
// distinct i; iterations may run in any order. If any invocation panics,
// For panics after the remaining workers drain.
func (p *Pool) For(n int, fn func(i int)) {
	w := p.Workers()
	if n <= 1 || w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	want := w - 1
	if want > n-1 {
		want = n - 1
	}
	var (
		next     atomic.Int64
		panicked atomic.Value
	)
	run := func() {
		defer func() {
			if r := recover(); r != nil {
				panicked.Store(r)
				// Poison the counter so other workers stop claiming work.
				next.Store(int64(n))
			}
		}()
		for {
			i := next.Add(1) - 1
			if i >= int64(n) {
				return
			}
			fn(int(i))
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < want; g++ {
		if !p.tryAddHelper() {
			break // budget exhausted: the caller will do the rest
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer p.helpers.Add(-1)
			run()
		}()
	}
	run()
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(r)
	}
}

// tryAddHelper reserves one slot of the shared helper budget (Workers()-1
// concurrent helpers across all For calls on this pool).
func (p *Pool) tryAddHelper() bool {
	limit := int32(p.Workers() - 1)
	for {
		cur := p.helpers.Load()
		if cur >= limit {
			return false
		}
		if p.helpers.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// SetWorkers configures the default pool; n <= 0 restores the GOMAXPROCS
// default. The serving runtime wires its Config.LimbWorkers here.
func SetWorkers(n int) { Default.SetWorkers(n) }

// Workers returns the default pool's effective size.
func Workers() int { return Default.Workers() }

// For runs fn over [0, n) on the default pool.
func For(n int, fn func(i int)) { Default.For(n, fn) }
