package ckks

import (
	"fmt"
	"math"
	"math/big"
	"math/cmplx"

	"cinnamon/internal/ring"
)

// Encoder maps vectors of complex numbers to ring plaintexts and back via
// the canonical embedding (paper Fig. 2 ①→②): slot j holds the evaluation
// of the plaintext polynomial at the primitive 2N-th root of unity raised
// to the 5^j-th power.
type Encoder struct {
	params   *Parameters
	m        int          // 2N
	rotGroup []int        // 5^j mod 2N
	ksiPows  []complex128 // e^{2πi·k/m} for k in [0, m]
}

// NewEncoder builds encoding tables for the parameter set.
func NewEncoder(params *Parameters) *Encoder {
	n := params.N()
	m := 2 * n
	e := &Encoder{
		params:   params,
		m:        m,
		rotGroup: make([]int, n/2),
		ksiPows:  make([]complex128, m+1),
	}
	five := 1
	for j := 0; j < n/2; j++ {
		e.rotGroup[j] = five
		five = five * 5 % m
	}
	for k := 0; k <= m; k++ {
		angle := 2 * math.Pi * float64(k) / float64(m)
		e.ksiPows[k] = cmplx.Exp(complex(0, angle))
	}
	return e
}

func bitReverseInPlace(v []complex128) {
	n := len(v)
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			v[i], v[j] = v[j], v[i]
		}
	}
}

// fftSpecial evaluates the plaintext-coefficient vector at the canonical
// embedding points (decode direction).
func (e *Encoder) fftSpecial(v []complex128) {
	size := len(v)
	bitReverseInPlace(v)
	for l := 2; l <= size; l <<= 1 {
		for i := 0; i < size; i += l {
			lh, lq := l>>1, l<<2
			for j := 0; j < lh; j++ {
				idx := (e.rotGroup[j] % lq) * e.m / lq
				u, w := v[i+j], v[i+j+lh]*e.ksiPows[idx]
				v[i+j], v[i+j+lh] = u+w, u-w
			}
		}
	}
}

// fftSpecialInv is the inverse transform (encode direction).
func (e *Encoder) fftSpecialInv(v []complex128) {
	size := len(v)
	for l := size; l >= 1; l >>= 1 {
		for i := 0; i < size; i += l {
			lh, lq := l>>1, l<<2
			for j := 0; j < lh; j++ {
				idx := (lq - e.rotGroup[j]%lq) * e.m / lq
				u, w := v[i+j]+v[i+j+lh], (v[i+j]-v[i+j+lh])*e.ksiPows[idx]
				v[i+j], v[i+j+lh] = u, w
			}
		}
	}
	bitReverseInPlace(v)
	inv := complex(1/float64(size), 0)
	for i := range v {
		v[i] *= inv
	}
}

// SpecialFFT applies the decode-direction slot transform in place.
// Exposed so the bootstrapper can build its CoeffToSlot/SlotToCoeff
// matrices numerically from the exact transform the encoder uses.
func (e *Encoder) SpecialFFT(v []complex128) { e.fftSpecial(v) }

// SpecialFFTInv applies the encode-direction transform in place.
func (e *Encoder) SpecialFFTInv(v []complex128) { e.fftSpecialInv(v) }

// Encode encodes values (len a power of two ≤ N/2) into a plaintext
// polynomial at the given level and scale. The polynomial is returned in
// the NTT domain, ready for homomorphic use.
func (e *Encoder) Encode(values []complex128, level int, scale float64) (*Plaintext, error) {
	slots := len(values)
	if slots == 0 || slots&(slots-1) != 0 || slots > e.params.Slots() {
		return nil, fmt.Errorf("ckks: slot count %d must be a power of two ≤ %d", slots, e.params.Slots())
	}
	basis, err := e.params.BasisAtLevel(level)
	if err != nil {
		return nil, err
	}
	v := append([]complex128(nil), values...)
	e.fftSpecialInv(v)
	nh := e.params.N() / 2
	gap := nh / slots
	p := e.params.Ring.NewPoly(basis)
	const maxCoeff = float64(1 << 62)
	for j := 0; j < slots; j++ {
		re := math.Round(real(v[j]) * scale)
		im := math.Round(imag(v[j]) * scale)
		if math.Abs(re) > maxCoeff || math.Abs(im) > maxCoeff {
			return nil, fmt.Errorf("ckks: encoded coefficient overflow at slot %d", j)
		}
		for k, q := range basis.Moduli {
			p.Limbs[k][j*gap] = reduceInt64(int64(re), q)
			p.Limbs[k][j*gap+nh] = reduceInt64(int64(im), q)
		}
	}
	if err := e.params.Ring.NTT(p); err != nil {
		return nil, err
	}
	return &Plaintext{Poly: p, Scale: scale, LevelV: level}, nil
}

// Decode recovers slots complex values from a plaintext.
func (e *Encoder) Decode(pt *Plaintext, slots int) ([]complex128, error) {
	if slots == 0 || slots&(slots-1) != 0 || slots > e.params.Slots() {
		return nil, fmt.Errorf("ckks: slot count %d must be a power of two ≤ %d", slots, e.params.Slots())
	}
	poly := pt.Poly.Copy()
	if err := e.params.Ring.INTT(poly); err != nil {
		return nil, err
	}
	nh := e.params.N() / 2
	gap := nh / slots
	v := make([]complex128, slots)
	for j := 0; j < slots; j++ {
		re, err := poly.CoeffToCentered(j * gap)
		if err != nil {
			return nil, err
		}
		im, err := poly.CoeffToCentered(j*gap + nh)
		if err != nil {
			return nil, err
		}
		fr, _ := new(big.Float).SetInt(re).Float64()
		fi, _ := new(big.Float).SetInt(im).Float64()
		v[j] = complex(fr/pt.Scale, fi/pt.Scale)
	}
	e.fftSpecial(v)
	return v, nil
}

// reduceInt64 maps a signed value into [0, q).
func reduceInt64(v int64, q uint64) uint64 {
	if v >= 0 {
		return uint64(v) % q
	}
	r := uint64(-v) % q
	if r == 0 {
		return 0
	}
	return q - r
}

// EncodeReal is a convenience wrapper for real-valued inputs.
func (e *Encoder) EncodeReal(values []float64, level int, scale float64) (*Plaintext, error) {
	cv := make([]complex128, len(values))
	for i, f := range values {
		cv[i] = complex(f, 0)
	}
	return e.Encode(cv, level, scale)
}

// Plaintext is an encoded message: a ring polynomial with scale and level
// bookkeeping.
type Plaintext struct {
	Poly   *ring.Poly
	Scale  float64
	LevelV int
}

// Level returns the plaintext level.
func (p *Plaintext) Level() int { return p.LevelV }
