// Package ckks implements the CKKS approximate-arithmetic FHE scheme
// (Cheon-Kim-Kim-Song) in full RNS form: encoding via the canonical
// embedding, encryption, homomorphic add/multiply/rotate, rescaling, and
// hybrid keyswitching with digit decomposition — the scheme the Cinnamon
// paper accelerates (§2).
package ckks

import (
	"fmt"
	"math"
	"sync/atomic"

	"cinnamon/internal/ring"
	"cinnamon/internal/rns"
)

// ParametersLiteral describes a CKKS parameter set by bit sizes, mirroring
// how FHE libraries specify parameter sets.
type ParametersLiteral struct {
	LogN     int   // ring dimension 2^LogN
	LogQ     []int // bit sizes of the ciphertext chain moduli q_0..q_L
	LogP     []int // bit sizes of the special (extension) moduli
	LogScale int   // log2 of the default encoding scale Δ
	// Digits is the number of keyswitching digits (dnum). Zero means
	// ceil(len(LogQ)/len(LogP)), the usual hybrid-keyswitch choice.
	Digits int
	Seed   int64 // PRNG seed for key material (deterministic builds)
	// HammingWeight, when nonzero, makes the secret a sparse ternary with
	// exactly that many nonzero coefficients (required by bootstrapping).
	HammingWeight int
	// SkipNTTTables builds the ring without NTT tables: compile-only /
	// timing-simulation parameter sets at large N (no functional
	// execution possible).
	SkipNTTTables bool
}

// Parameters is a compiled CKKS parameter set with its ring context.
type Parameters struct {
	logN     int
	logScale int
	digits   int
	alpha    int // moduli per digit = len(P)
	seed     int64
	hamming  int

	QBasis rns.Basis // ciphertext chain q_0..q_L
	PBasis rns.Basis // special moduli
	Ring   *ring.Ring

	// ksPlans caches one compiled keyswitch plan per level (ksplan.go).
	// Slots fill lazily via KSPlanAtLevel or eagerly via CompilePlans.
	ksPlans []atomic.Pointer[KSPlan]
}

// NewParameters validates and compiles a parameter literal: it generates
// distinct NTT-friendly primes for every chain and special modulus and
// builds the ring.
func NewParameters(lit ParametersLiteral) (*Parameters, error) {
	if lit.LogN < 3 || lit.LogN > 17 {
		return nil, fmt.Errorf("ckks: LogN %d out of supported range [3,17]", lit.LogN)
	}
	if len(lit.LogQ) < 1 {
		return nil, fmt.Errorf("ckks: need at least one chain modulus")
	}
	if len(lit.LogP) < 1 {
		return nil, fmt.Errorf("ckks: need at least one special modulus")
	}
	if lit.LogScale < 10 || lit.LogScale > 60 {
		return nil, fmt.Errorf("ckks: LogScale %d out of range [10,60]", lit.LogScale)
	}
	// Count how many primes of each bit size we need, then hand them out in
	// order so all moduli are distinct.
	need := map[int]int{}
	for _, b := range lit.LogQ {
		need[b]++
	}
	for _, b := range lit.LogP {
		need[b]++
	}
	pool := map[int][]uint64{}
	for bits, cnt := range need {
		ps, err := rns.GenerateNTTPrimes(bits, lit.LogN, cnt)
		if err != nil {
			return nil, fmt.Errorf("ckks: generating %d %d-bit primes: %w", cnt, bits, err)
		}
		pool[bits] = ps
	}
	take := func(bits int) uint64 {
		p := pool[bits][0]
		pool[bits] = pool[bits][1:]
		return p
	}
	qMods := make([]uint64, len(lit.LogQ))
	for i, b := range lit.LogQ {
		qMods[i] = take(b)
	}
	pMods := make([]uint64, len(lit.LogP))
	for i, b := range lit.LogP {
		pMods[i] = take(b)
	}
	qb, err := rns.NewBasis(qMods)
	if err != nil {
		return nil, err
	}
	pb, err := rns.NewBasis(pMods)
	if err != nil {
		return nil, err
	}
	uni, err := qb.Union(pb)
	if err != nil {
		return nil, err
	}
	var rg *ring.Ring
	if lit.SkipNTTTables {
		rg, err = ring.NewRingLazy(1<<lit.LogN, uni)
	} else {
		rg, err = ring.NewRing(1<<lit.LogN, uni)
	}
	if err != nil {
		return nil, err
	}
	alpha := len(pMods)
	digits := lit.Digits
	if digits == 0 {
		digits = (len(qMods) + alpha - 1) / alpha
	}
	maxDigits := (len(qMods) + alpha - 1) / alpha
	if digits < 1 || digits > len(qMods) {
		return nil, fmt.Errorf("ckks: digit count %d out of range", digits)
	}
	if digits > maxDigits {
		digits = maxDigits
	}
	return &Parameters{
		logN:     lit.LogN,
		logScale: lit.LogScale,
		digits:   digits,
		alpha:    alpha,
		seed:     lit.Seed,
		hamming:  lit.HammingWeight,
		QBasis:   qb,
		PBasis:   pb,
		Ring:     rg,
		ksPlans:  make([]atomic.Pointer[KSPlan], qb.Len()),
	}, nil
}

// N returns the ring dimension.
func (p *Parameters) N() int { return 1 << p.logN }

// LogN returns log2 of the ring dimension.
func (p *Parameters) LogN() int { return p.logN }

// Slots returns the number of complex plaintext slots (N/2).
func (p *Parameters) Slots() int { return 1 << (p.logN - 1) }

// MaxLevel returns the highest ciphertext level (len(Q)−1).
func (p *Parameters) MaxLevel() int { return p.QBasis.Len() - 1 }

// DefaultScale returns the default encoding scale Δ.
func (p *Parameters) DefaultScale() float64 { return math.Exp2(float64(p.logScale)) }

// Digits returns the keyswitching digit count (dnum).
func (p *Parameters) Digits() int { return p.digits }

// Alpha returns the number of moduli per keyswitching digit.
func (p *Parameters) Alpha() int { return p.alpha }

// Seed returns the deterministic key-material seed.
func (p *Parameters) Seed() int64 { return p.seed }

// HammingWeight returns the sparse-secret weight (0 = dense ternary).
func (p *Parameters) HammingWeight() int { return p.hamming }

// BasisAtLevel returns the ciphertext chain prefix for level l (l+1 limbs).
func (p *Parameters) BasisAtLevel(l int) (rns.Basis, error) {
	if l < 0 || l > p.MaxLevel() {
		return rns.Basis{}, fmt.Errorf("ckks: level %d out of [0,%d]", l, p.MaxLevel())
	}
	return p.QBasis.Prefix(l + 1), nil
}

// DigitRange returns the chain-index interval [lo, hi) of digit d at level
// l: digit d covers moduli d·alpha .. min((d+1)·alpha, l+1). The second
// return is false when the digit is empty at this level.
func (p *Parameters) DigitRange(d, l int) (lo, hi int, ok bool) {
	lo = d * p.alpha
	hi = (d + 1) * p.alpha
	if hi > l+1 {
		hi = l + 1
	}
	if lo >= l+1 {
		return 0, 0, false
	}
	return lo, hi, true
}

// QPBasis returns the full universe basis Q ∪ P.
func (p *Parameters) QPBasis() rns.Basis { return p.Ring.Universe }
