package ckks

import (
	"testing"

	"cinnamon/internal/parallel"
)

// TestKeySwitchPlannedZeroAlloc pins the serving-path memory discipline:
// once the per-level plan is compiled and the ring pools are warm, a
// planned keyswitch performs zero heap allocations. Runs at one worker —
// the serial branches of every two-branch hot loop must not materialize
// their fan-out closures.
func TestKeySwitchPlannedZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is perturbed by the race detector")
	}
	params := ksTestParams(t)
	r := params.Ring
	kg := NewKeyGenerator(params)
	sk, err := kg.GenSecretKey()
	if err != nil {
		t.Fatal(err)
	}
	rlk, err := kg.GenRelinKey(sk)
	if err != nil {
		t.Fatal(err)
	}
	pk, err := kg.GenPublicKey(sk)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(params)
	encryptor := NewEncryptor(params, pk)
	ev := NewEvaluator(params, rlk, nil)
	vals := make([]complex128, params.Slots())
	for i := range vals {
		vals[i] = complex(float64(i%3), float64(i%2))
	}
	pt, err := enc.Encode(vals, params.MaxLevel(), params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	ct, err := encryptor.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	if err := params.CompilePlans(); err != nil {
		t.Fatal(err)
	}
	prev := parallel.Workers()
	defer parallel.SetWorkers(prev)
	parallel.SetWorkers(1)
	// Warm the pools.
	for i := 0; i < 3; i++ {
		f0, f1, err := ev.KeySwitch(ct.C1, rlk)
		if err != nil {
			t.Fatal(err)
		}
		r.PutPoly(f0)
		r.PutPoly(f1)
	}
	allocs := testing.AllocsPerRun(10, func() {
		f0, f1, err := ev.KeySwitch(ct.C1, rlk)
		if err != nil {
			t.Fatal(err)
		}
		r.PutPoly(f0)
		r.PutPoly(f1)
	})
	if allocs != 0 {
		t.Fatalf("warm planned keyswitch allocated %.1f times per op, want 0", allocs)
	}
}
