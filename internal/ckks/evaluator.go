package ckks

import (
	"fmt"
	"math"
	"math/big"

	"cinnamon/internal/parallel"
	"cinnamon/internal/ring"
	"cinnamon/internal/rns"
)

// Evaluator performs homomorphic operations on ciphertexts. It holds the
// relinearization and rotation keys it may need; operations that lack the
// required key fail with a descriptive error.
type Evaluator struct {
	params *Parameters
	enc    *Encoder
	rlk    *EvalKey
	rtks   *RotationKeySet
	ks     KeySwitcher
}

// KeySwitcher is a pluggable keyswitch backend. The cluster runtime
// implements it to route every relinearization and rotation keyswitch
// through the distributed collectives; the zero value (nil) keeps the
// built-in single-chip kernel. Implementations must accept c in NTT domain
// over a level basis and return two NTT-domain polynomials over the same
// basis, exactly like Evaluator.KeySwitch.
type KeySwitcher interface {
	KeySwitch(c *ring.Poly, evk *EvalKey) (*ring.Poly, *ring.Poly, error)
}

// SetKeySwitcher installs (or, with nil, removes) a keyswitch backend.
// Every MulRelin, Rotate and Conjugate afterwards dispatches through it.
func (ev *Evaluator) SetKeySwitcher(ks KeySwitcher) { ev.ks = ks }

// keySwitch dispatches to the installed backend, if any.
func (ev *Evaluator) keySwitch(c *ring.Poly, evk *EvalKey) (*ring.Poly, *ring.Poly, error) {
	if ev.ks != nil {
		return ev.ks.KeySwitch(c, evk)
	}
	return ev.KeySwitch(c, evk)
}

// NewEvaluator returns an evaluator. rlk and rtks may be nil when only
// linear operations are used.
func NewEvaluator(params *Parameters, rlk *EvalKey, rtks *RotationKeySet) *Evaluator {
	return &Evaluator{params: params, enc: NewEncoder(params), rlk: rlk, rtks: rtks}
}

// Params returns the evaluator's parameter set.
func (ev *Evaluator) Params() *Parameters { return ev.params }

// Add returns a + b. Operands must share level and scale.
func (ev *Evaluator) Add(a, b *Ciphertext) (*Ciphertext, error) {
	if err := ev.checkBinary(a, b); err != nil {
		return nil, err
	}
	r := ev.params.Ring
	out := &Ciphertext{C0: r.NewPoly(a.C0.Basis), C1: r.NewPoly(a.C0.Basis), Scale: a.Scale}
	if err := r.Add(a.C0, b.C0, out.C0); err != nil {
		return nil, err
	}
	if err := r.Add(a.C1, b.C1, out.C1); err != nil {
		return nil, err
	}
	return out, nil
}

// Sub returns a − b.
func (ev *Evaluator) Sub(a, b *Ciphertext) (*Ciphertext, error) {
	if err := ev.checkBinary(a, b); err != nil {
		return nil, err
	}
	r := ev.params.Ring
	out := &Ciphertext{C0: r.NewPoly(a.C0.Basis), C1: r.NewPoly(a.C0.Basis), Scale: a.Scale}
	if err := r.Sub(a.C0, b.C0, out.C0); err != nil {
		return nil, err
	}
	if err := r.Sub(a.C1, b.C1, out.C1); err != nil {
		return nil, err
	}
	return out, nil
}

// Neg returns −a.
func (ev *Evaluator) Neg(a *Ciphertext) *Ciphertext {
	r := ev.params.Ring
	out := &Ciphertext{C0: r.NewPoly(a.C0.Basis), C1: r.NewPoly(a.C0.Basis), Scale: a.Scale}
	r.Neg(a.C0, out.C0)
	r.Neg(a.C1, out.C1)
	return out
}

func (ev *Evaluator) checkBinary(a, b *Ciphertext) error {
	if a.Level() != b.Level() {
		return fmt.Errorf("ckks: level mismatch %d vs %d", a.Level(), b.Level())
	}
	if !sameScale(a.Scale, b.Scale) {
		return fmt.Errorf("ckks: scale mismatch %g vs %g", a.Scale, b.Scale)
	}
	return nil
}

// AddPlain returns ct + pt (matching level and scale).
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	if ct.Level() != pt.Level() {
		return nil, fmt.Errorf("ckks: level mismatch ct %d vs pt %d", ct.Level(), pt.Level())
	}
	if !sameScale(ct.Scale, pt.Scale) {
		return nil, fmt.Errorf("ckks: scale mismatch %g vs %g", ct.Scale, pt.Scale)
	}
	r := ev.params.Ring
	out := ct.Copy()
	if err := r.Add(out.C0, pt.Poly, out.C0); err != nil {
		return nil, err
	}
	return out, nil
}

// MulPlain returns ct ⊙ pt; the output scale is the product of scales.
// The caller typically rescales afterwards.
func (ev *Evaluator) MulPlain(ct *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	if ct.Level() != pt.Level() {
		return nil, fmt.Errorf("ckks: level mismatch ct %d vs pt %d", ct.Level(), pt.Level())
	}
	r := ev.params.Ring
	out := &Ciphertext{C0: r.NewPoly(ct.C0.Basis), C1: r.NewPoly(ct.C0.Basis), Scale: ct.Scale * pt.Scale}
	if err := r.MulCoeffs(ct.C0, pt.Poly, out.C0); err != nil {
		return nil, err
	}
	if err := r.MulCoeffs(ct.C1, pt.Poly, out.C1); err != nil {
		return nil, err
	}
	return out, nil
}

// MulRelin returns a ⊗ b relinearized back to two components using the
// relinearization key (paper Fig. 5, left). The output scale is the product
// of the input scales; the caller typically rescales afterwards.
func (ev *Evaluator) MulRelin(a, b *Ciphertext) (*Ciphertext, error) {
	if ev.rlk == nil {
		return nil, fmt.Errorf("ckks: evaluator has no relinearization key")
	}
	if a.Level() != b.Level() {
		return nil, fmt.Errorf("ckks: level mismatch %d vs %d", a.Level(), b.Level())
	}
	r := ev.params.Ring
	basis := a.C0.Basis
	d0 := r.NewPoly(basis)
	d1 := r.NewPoly(basis)
	d2 := r.GetPoly(basis)
	t := r.GetPoly(basis)
	defer r.PutPoly(d2)
	defer r.PutPoly(t)
	if err := r.MulCoeffs(a.C0, b.C0, d0); err != nil {
		return nil, err
	}
	if err := r.MulCoeffs(a.C0, b.C1, d1); err != nil {
		return nil, err
	}
	if err := r.MulCoeffs(a.C1, b.C0, t); err != nil {
		return nil, err
	}
	if err := r.Add(d1, t, d1); err != nil {
		return nil, err
	}
	if err := r.MulCoeffs(a.C1, b.C1, d2); err != nil {
		return nil, err
	}
	f0, f1, err := ev.keySwitch(d2, ev.rlk)
	if err != nil {
		return nil, err
	}
	if err := r.Add(d0, f0, d0); err != nil {
		return nil, err
	}
	if err := r.Add(d1, f1, d1); err != nil {
		return nil, err
	}
	r.PutPoly(f0)
	r.PutPoly(f1)
	return &Ciphertext{C0: d0, C1: d1, Scale: a.Scale * b.Scale}, nil
}

// Rescale divides the ciphertext by its last chain modulus, dropping one
// level and dividing the scale accordingly.
func (ev *Evaluator) Rescale(ct *Ciphertext) (*Ciphertext, error) {
	if ct.Level() == 0 {
		return nil, fmt.Errorf("ckks: cannot rescale at level 0")
	}
	r := ev.params.Ring
	ql := ct.C0.Basis.Moduli[ct.Level()]
	c0 := r.CopyPoly(ct.C0)
	c1 := r.CopyPoly(ct.C1)
	defer r.PutPoly(c0)
	defer r.PutPoly(c1)
	if err := r.INTT(c0); err != nil {
		return nil, err
	}
	if err := r.INTT(c1); err != nil {
		return nil, err
	}
	r0, err := r.Rescale(c0)
	if err != nil {
		return nil, err
	}
	r1, err := r.Rescale(c1)
	if err != nil {
		return nil, err
	}
	if err := r.NTT(r0); err != nil {
		return nil, err
	}
	if err := r.NTT(r1); err != nil {
		return nil, err
	}
	return &Ciphertext{C0: r0, C1: r1, Scale: ct.Scale / float64(ql)}, nil
}

// DropLevel truncates the ciphertext to the given (lower) level without
// changing the scale.
func (ev *Evaluator) DropLevel(ct *Ciphertext, level int) (*Ciphertext, error) {
	if level > ct.Level() || level < 0 {
		return nil, fmt.Errorf("ckks: cannot drop from level %d to %d", ct.Level(), level)
	}
	out := ct.Copy()
	out.C0.DropLastLimbs(ct.Level() - level)
	out.C1.DropLastLimbs(ct.Level() - level)
	return out, nil
}

// Rotate rotates the slot vector by k positions using the matching rotation
// key (paper Fig. 5, right: automorphism + keyswitch).
func (ev *Evaluator) Rotate(ct *Ciphertext, k int) (*Ciphertext, error) {
	if k == 0 {
		return ct.Copy(), nil
	}
	if ev.rtks == nil || ev.rtks.Keys[k] == nil {
		return nil, fmt.Errorf("ckks: no rotation key for offset %d", k)
	}
	g := ev.params.Ring.GaloisElementForRotation(k)
	return ev.automorphismKS(ct, g, ev.rtks.Keys[k])
}

// Conjugate applies complex conjugation to the slots.
func (ev *Evaluator) Conjugate(ct *Ciphertext) (*Ciphertext, error) {
	if ev.rtks == nil || ev.rtks.Conj == nil {
		return nil, fmt.Errorf("ckks: no conjugation key")
	}
	g := ev.params.Ring.GaloisElementForConjugation()
	return ev.automorphismKS(ct, g, ev.rtks.Conj)
}

func (ev *Evaluator) automorphismKS(ct *Ciphertext, galEl uint64, key *EvalKey) (*Ciphertext, error) {
	r := ev.params.Ring
	basis := ct.C0.Basis
	s0 := r.NewPoly(basis)
	s1 := r.GetPoly(basis)
	defer r.PutPoly(s1)
	if err := r.Automorphism(ct.C0, galEl, s0); err != nil {
		return nil, err
	}
	if err := r.Automorphism(ct.C1, galEl, s1); err != nil {
		return nil, err
	}
	f0, f1, err := ev.keySwitch(s1, key)
	if err != nil {
		return nil, err
	}
	if err := r.Add(s0, f0, s0); err != nil {
		return nil, err
	}
	r.PutPoly(f0)
	return &Ciphertext{C0: s0, C1: f1, Scale: ct.Scale}, nil
}

// KeySwitch runs the hybrid keyswitching kernel of paper Fig. 4 on a single
// polynomial c (NTT domain, level-l chain basis): digit-decompose, mod-up
// each digit to Q_l ∪ P, inner-product with the evaluation key, and
// mod-down back to Q_l. Returns the two output polynomials in NTT domain.
//
// Ciphertexts over the standard chain prefix with a default-partition key
// ride the precompiled per-level plan (ksplan.go): fused transform/absorb
// kernels, batch NTT plans, zero setup work and zero heap allocations once
// warm. Custom digit partitions and foreign bases fall back to the generic
// kernel below; both paths are bit-identical.
func (ev *Evaluator) KeySwitch(c *ring.Poly, evk *EvalKey) (*ring.Poly, *ring.Poly, error) {
	if !c.IsNTT {
		return nil, nil, fmt.Errorf("ckks: KeySwitch input must be NTT")
	}
	params := ev.params
	l := c.Basis.Len() - 1
	if evk.DigitSets == nil && l <= params.MaxLevel() &&
		len(evk.B) > 0 && evk.B[0].Basis.Len() == params.Ring.Universe.Len() {
		if pl, err := params.KSPlanAtLevel(l); err == nil && pl.sBasis.Equal(c.Basis) && len(evk.B) >= len(pl.digits) {
			return ev.keySwitchPlanned(pl, c, evk)
		}
	}
	return ev.keySwitchGeneric(c, evk)
}

// keySwitchPlanned is the steady-state keyswitch: every derived quantity
// comes from the plan, every temporary from the ring pools, and the digit
// loop runs the fused forward-transform-and-accumulate kernel. The digit's
// own limbs skip their transforms entirely — the input is already their
// NTT image (NTT∘INTT is bit-exact), so only the base-converted complement
// limbs transform, fused into the accumulate.
func (ev *Evaluator) keySwitchPlanned(pl *KSPlan, c *ring.Poly, evk *EvalKey) (*ring.Poly, *ring.Poly, error) {
	r := ev.params.Ring
	// Scaled decompose: limb j's out-of-place inverse transform emits its
	// owning digit's z-value directly (copy, INTT and z-stage in one pass).
	zAll := r.GetPolyUninit(pl.sBasis)
	defer r.PutPoly(zAll)
	sLen := pl.sBasis.Len()
	if parallel.Workers() > 1 && parallel.WorthFanout(sLen, r.N, parallel.CostNTT) {
		parallel.For(sLen, func(j int) {
			zs := &pl.zscale[j]
			pl.nttS.Table(j).InverseScaledFrom(c.Limbs[j], zAll.Limbs[j], zs[0], zs[1], zs[2], zs[3])
		})
	} else {
		for j := 0; j < sLen; j++ {
			zs := &pl.zscale[j]
			pl.nttS.Table(j).InverseScaledFrom(c.Limbs[j], zAll.Limbs[j], zs[0], zs[1], zs[2], zs[3])
		}
	}
	acc0 := r.GetLazyAcc(pl.union)
	acc1 := r.GetLazyAcc(pl.union)
	defer acc0.Release()
	defer acc1.Release()
	for d := range pl.digits {
		dg := &pl.digits[d]
		conv := r.GetPolyUninit(dg.comp)
		if err := dg.bc.AccumulateInto(zAll.Limbs[dg.lo:dg.hi], conv.Limbs); err != nil {
			r.PutPoly(conv)
			return nil, nil, err
		}
		bD, err := r.ViewAt(evk.B[d], pl.union, pl.evkIdx)
		if err != nil {
			r.PutPoly(conv)
			return nil, nil, err
		}
		aD, err := r.ViewAt(evk.A[d], pl.union, pl.evkIdx)
		if err != nil {
			r.PutView(bD)
			r.PutPoly(conv)
			return nil, nil, err
		}
		err = r.AbsorbDigitFused(pl.nttU, acc0, acc1, dg.own, c, conv.Limbs, bD, aD)
		r.PutView(bD)
		r.PutView(aD)
		r.PutPoly(conv)
		if err != nil {
			return nil, nil, err
		}
	}
	g0 := r.GetPolyUninit(pl.union)
	g1 := r.GetPolyUninit(pl.union)
	defer r.PutPoly(g0)
	defer r.PutPoly(g1)
	acc0.ReduceInto(g0)
	acc1.ReduceInto(g1)
	// NTT-domain mod-down: only the extension limbs leave the NTT domain,
	// and the converted limbs' forward transforms are fused with the
	// combine — 2·|Q_l| fewer transforms than INTT → mod-down → NTT.
	f0, err := r.ModDownNTTWith(pl.modDown, g0)
	if err != nil {
		return nil, nil, err
	}
	f1, err := r.ModDownNTTWith(pl.modDown, g1)
	if err != nil {
		r.PutPoly(f0)
		return nil, nil, err
	}
	return f0, f1, nil
}

// keySwitchGeneric is the fallback keyswitch for custom digit partitions
// and bases without a compiled plan. All temporaries still cycle through
// the ring's buffer pool.
func (ev *Evaluator) keySwitchGeneric(c *ring.Poly, evk *EvalKey) (f0, f1 *ring.Poly, err error) {
	params, r := ev.params, ev.params.Ring
	l := c.Basis.Len() - 1
	qlBasis := c.Basis
	extBasis := params.PBasis
	union, err := qlBasis.Union(extBasis)
	if err != nil {
		return nil, nil, err
	}
	cc := r.CopyPoly(c)
	defer r.PutPoly(cc)
	if err := r.INTT(cc); err != nil {
		return nil, nil, err
	}
	// Fused lazy inner product: each digit's products accumulate unreduced
	// into 128-bit per-coefficient accumulators; one Barrett reduction per
	// coefficient at the end replaces the per-digit reduce-and-add passes.
	// The digit's mod-up is transformed once and feeds both accumulators.
	acc0 := r.GetLazyAcc(union)
	acc1 := r.GetLazyAcc(union)
	defer acc0.Release()
	defer acc1.Release()
	for d := 0; d < evk.Digits(); d++ {
		lo, hi, ok := params.DigitRange(d, l)
		if !ok {
			break
		}
		ext, err := ev.digitModUp(cc, lo, hi, union)
		if err != nil {
			return nil, nil, err
		}
		if err := r.NTT(ext); err != nil {
			r.PutPoly(ext)
			return nil, nil, err
		}
		bD, err := r.Restrict(evk.B[d], union)
		if err != nil {
			r.PutPoly(ext)
			return nil, nil, err
		}
		aD, err := r.Restrict(evk.A[d], union)
		if err != nil {
			r.PutPoly(ext)
			return nil, nil, err
		}
		if err := acc0.MulAcc(ext, bD); err != nil {
			r.PutPoly(ext)
			return nil, nil, err
		}
		err = acc1.MulAcc(ext, aD)
		r.PutPoly(ext)
		if err != nil {
			return nil, nil, err
		}
	}
	g0 := r.GetPoly(union)
	g1 := r.GetPoly(union)
	defer r.PutPoly(g0)
	defer r.PutPoly(g1)
	acc0.ReduceInto(g0)
	acc1.ReduceInto(g1)
	if err := r.INTT(g0); err != nil {
		return nil, nil, err
	}
	if err := r.INTT(g1); err != nil {
		return nil, nil, err
	}
	if f0, err = r.ModDown(g0, extBasis); err != nil {
		return nil, nil, err
	}
	if f1, err = r.ModDown(g1, extBasis); err != nil {
		return nil, nil, err
	}
	if err := r.NTT(f0); err != nil {
		return nil, nil, err
	}
	if err := r.NTT(f1); err != nil {
		return nil, nil, err
	}
	return f0, f1, nil
}

// digitModUp extracts digit limbs [lo,hi) of cc (coefficient domain, level
// basis) and extends them to the full union basis Q_l ∪ P by fast base
// conversion, keeping the digit's own limbs exact. The returned polynomial
// is pooled; the caller releases it with PutPoly.
func (ev *Evaluator) digitModUp(cc *ring.Poly, lo, hi int, union rns.Basis) (*ring.Poly, error) {
	r := ev.params.Ring
	qlLen := cc.Basis.Len()
	digitBasis := rns.Basis{Moduli: cc.Basis.Moduli[lo:hi]}
	// Complement: chain moduli outside the digit, then the special moduli.
	compMods := make([]uint64, 0, union.Len()-(hi-lo))
	compMods = append(compMods, cc.Basis.Moduli[:lo]...)
	compMods = append(compMods, cc.Basis.Moduli[hi:]...)
	compMods = append(compMods, union.Moduli[qlLen:]...)
	compBasis := rns.Basis{Moduli: compMods}
	bc, err := ring.ConverterFor(digitBasis, compBasis)
	if err != nil {
		return nil, err
	}
	conv, err := bc.Convert(cc.Limbs[lo:hi])
	if err != nil {
		return nil, err
	}
	out := r.GetPoly(union)
	ci := 0
	for j := 0; j < qlLen; j++ {
		if j >= lo && j < hi {
			copy(out.Limbs[j], cc.Limbs[j])
		} else {
			copy(out.Limbs[j], conv[ci])
			ci++
		}
	}
	for j := qlLen; j < union.Len(); j++ {
		copy(out.Limbs[j], conv[ci])
		ci++
	}
	return out, nil
}

// SetScale brings the ciphertext to exactly the target scale by
// multiplying with the constant 1 encoded at the right plaintext scale and
// rescaling once (costs one level). Use it to normalize the rescaling
// drift before an operation that requires an exact scale, such as
// bootstrapping.
func (ev *Evaluator) SetScale(ct *Ciphertext, target float64) (*Ciphertext, error) {
	if ct.Level() < 1 {
		return nil, fmt.Errorf("ckks: SetScale needs one spare level")
	}
	ptScale := target * ev.TopModulus(ct.Level()) / ct.Scale
	out, err := ev.MulConstAtScale(ct, 1, ptScale)
	if err != nil {
		return nil, err
	}
	if out, err = ev.Rescale(out); err != nil {
		return nil, err
	}
	// The tracked value is exact up to the constant's 2^-30-ish encoding
	// quantization; snap the bookkeeping to the target.
	out.Scale = target
	return out, nil
}

// MulByI multiplies every slot by the imaginary unit i. This is exact and
// free of scale consumption: it multiplies the ciphertext by the monomial
// X^{N/2}, whose canonical embedding is i in every slot.
func (ev *Evaluator) MulByI(ct *Ciphertext) (*Ciphertext, error) {
	r := ev.params.Ring
	mono := r.NewPoly(ct.C0.Basis)
	mono.SetCoeffBig(ev.params.N()/2, big.NewInt(1))
	if err := r.NTT(mono); err != nil {
		return nil, err
	}
	out := &Ciphertext{C0: r.NewPoly(ct.C0.Basis), C1: r.NewPoly(ct.C0.Basis), Scale: ct.Scale}
	if err := r.MulCoeffs(ct.C0, mono, out.C0); err != nil {
		return nil, err
	}
	if err := r.MulCoeffs(ct.C1, mono, out.C1); err != nil {
		return nil, err
	}
	return out, nil
}

// AddConst adds the constant c to every slot. Encoding a constant vector
// needs only two monomials: Δ·Re(c) + Δ·Im(c)·X^{N/2}.
func (ev *Evaluator) AddConst(ct *Ciphertext, c complex128) (*Ciphertext, error) {
	r := ev.params.Ring
	p := r.NewPoly(ct.C0.Basis)
	re := big.NewInt(int64(math.Round(real(c) * ct.Scale)))
	im := big.NewInt(int64(math.Round(imag(c) * ct.Scale)))
	p.SetCoeffBig(0, re)
	p.SetCoeffBig(ev.params.N()/2, im)
	if err := r.NTT(p); err != nil {
		return nil, err
	}
	out := ct.Copy()
	if err := r.Add(out.C0, p, out.C0); err != nil {
		return nil, err
	}
	return out, nil
}

// ScaleUp multiplies the ciphertext coefficients by the integer k and the
// tracked scale with it, leaving the plaintext values unchanged. It is
// exact (no noise, no level consumed) and is how bootstrapping aligns the
// message scale with q0 before ModRaise.
func (ev *Evaluator) ScaleUp(ct *Ciphertext, k uint64) *Ciphertext {
	r := ev.params.Ring
	out := &Ciphertext{C0: r.NewPoly(ct.C0.Basis), C1: r.NewPoly(ct.C0.Basis), Scale: ct.Scale * float64(k)}
	r.MulScalar(ct.C0, k, out.C0)
	r.MulScalar(ct.C1, k, out.C1)
	return out
}

// TopModulus returns the chain modulus consumed by the next rescale at the
// given level, as a float. Encoding plaintext factors at exactly this scale
// makes the following rescale preserve the ciphertext scale exactly.
func (ev *Evaluator) TopModulus(level int) float64 {
	return float64(ev.params.QBasis.Moduli[level])
}

// MulConst multiplies every slot by the constant c, consuming scale like a
// plaintext multiplication (output scale = ct.Scale · Δ); rescale after.
func (ev *Evaluator) MulConst(ct *Ciphertext, c complex128) (*Ciphertext, error) {
	return ev.MulConstAtScale(ct, c, ev.params.DefaultScale())
}

// MulConstAtScale is MulConst with an explicit plaintext encoding scale.
// Pass TopModulus(ct.Level()) to preserve the ciphertext scale exactly
// across the following rescale.
func (ev *Evaluator) MulConstAtScale(ct *Ciphertext, c complex128, scale float64) (*Ciphertext, error) {
	r := ev.params.Ring
	p := r.NewPoly(ct.C0.Basis)
	re := big.NewInt(int64(math.Round(real(c) * scale)))
	im := big.NewInt(int64(math.Round(imag(c) * scale)))
	p.SetCoeffBig(0, re)
	p.SetCoeffBig(ev.params.N()/2, im)
	if err := r.NTT(p); err != nil {
		return nil, err
	}
	out := &Ciphertext{C0: r.NewPoly(ct.C0.Basis), C1: r.NewPoly(ct.C0.Basis), Scale: ct.Scale * scale}
	if err := r.MulCoeffs(ct.C0, p, out.C0); err != nil {
		return nil, err
	}
	if err := r.MulCoeffs(ct.C1, p, out.C1); err != nil {
		return nil, err
	}
	return out, nil
}
