package ckks

import (
	"testing"

	"cinnamon/internal/parallel"
	"cinnamon/internal/ring"
)

func ksTestParams(t *testing.T) *Parameters {
	t.Helper()
	params, err := NewParameters(ParametersLiteral{
		LogN:     11,
		LogQ:     []int{50, 40, 40, 40, 40},
		LogP:     []int{55, 55},
		LogScale: 40,
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return params
}

// TestKeySwitchPlannedMatchesGeneric proves the precompiled planned
// keyswitch (fused kernels, NTT-domain mod-down, scaled decompose) is
// bit-identical to the generic fallback kernel at every level and worker
// setting. All intermediate laziness cancels: both paths emit canonical
// residues, which are unique.
func TestKeySwitchPlannedMatchesGeneric(t *testing.T) {
	params := ksTestParams(t)
	r := params.Ring
	kg := NewKeyGenerator(params)
	sk, err := kg.GenSecretKey()
	if err != nil {
		t.Fatal(err)
	}
	rlk, err := kg.GenRelinKey(sk)
	if err != nil {
		t.Fatal(err)
	}
	pk, err := kg.GenPublicKey(sk)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(params)
	encryptor := NewEncryptor(params, pk)
	ev := NewEvaluator(params, rlk, nil)
	vals := make([]complex128, params.Slots())
	for i := range vals {
		vals[i] = complex(float64(i%7)/7, float64(i%5)/5)
	}
	pt, err := enc.Encode(vals, params.MaxLevel(), params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	ct, err := encryptor.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	defer parallel.SetWorkers(parallel.Workers())
	for _, workers := range []int{1, 4} {
		parallel.SetWorkers(workers)
		cur := ct.C1
		for level := params.MaxLevel(); level >= 1; level-- {
			if cur.Basis.Len() != level+1 {
				t.Fatalf("level bookkeeping off: %d limbs at level %d", cur.Basis.Len(), level)
			}
			pl, err := params.KSPlanAtLevel(level)
			if err != nil {
				t.Fatal(err)
			}
			p0, p1, err := ev.keySwitchPlanned(pl, cur, rlk)
			if err != nil {
				t.Fatal(err)
			}
			g0, g1, err := ev.keySwitchGeneric(cur, rlk)
			if err != nil {
				t.Fatal(err)
			}
			for j := range p0.Limbs {
				for i := range p0.Limbs[j] {
					if p0.Limbs[j][i] != g0.Limbs[j][i] {
						t.Fatalf("workers=%d level=%d: f0 limb %d coeff %d: planned %d generic %d",
							workers, level, j, i, p0.Limbs[j][i], g0.Limbs[j][i])
					}
					if p1.Limbs[j][i] != g1.Limbs[j][i] {
						t.Fatalf("workers=%d level=%d: f1 limb %d coeff %d: planned %d generic %d",
							workers, level, j, i, p1.Limbs[j][i], g1.Limbs[j][i])
					}
				}
			}
			r.PutPoly(p0)
			r.PutPoly(p1)
			r.PutPoly(g0)
			r.PutPoly(g1)
			// Drop to the next level by rescaling the ciphertext polys.
			if level >= 1 {
				next, err := dropLevel(params, cur)
				if err != nil {
					t.Fatal(err)
				}
				if cur != ct.C1 {
					r.PutPoly(cur)
				}
				cur = next
			}
		}
		if cur != ct.C1 {
			r.PutPoly(cur)
		}
	}
}

// dropLevel strips the top limb of an NTT-domain polynomial, moving it to
// the next-lower chain prefix (test helper — not a rescale, just a basis
// truncation, which is all KeySwitch cares about).
func dropLevel(params *Parameters, p *ring.Poly) (*ring.Poly, error) {
	r := params.Ring
	b, err := params.BasisAtLevel(p.Basis.Len() - 2)
	if err != nil {
		return nil, err
	}
	out := r.GetPoly(b)
	out.IsNTT = p.IsNTT
	for j := 0; j < b.Len(); j++ {
		copy(out.Limbs[j], p.Limbs[j])
	}
	return out, nil
}
