package ckks

import (
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based tests on the homomorphism itself: for random plaintext
// vectors, the encrypted computation must commute with the plaintext one
// within the noise bound. Each property uses a fixed shared context (key
// generation is the expensive part) and draws fresh randomness per check.

func propContext(t *testing.T) *testContext {
	t.Helper()
	return newTestContext(t, []int{1, 2, 3})
}

func randVec(rng *rand.Rand, n int) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return v
}

func TestPropertyAdditionCommutes(t *testing.T) {
	tc := propContext(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randVec(rng, 16), randVec(rng, 16)
		ca, cb := tc.encrypt(t, a), tc.encrypt(t, b)
		s1, err := tc.ev.Add(ca, cb)
		if err != nil {
			return false
		}
		s2, err := tc.ev.Add(cb, ca)
		if err != nil {
			return false
		}
		v1 := tc.decryptDecode(t, s1, 16)
		v2 := tc.decryptDecode(t, s2, 16)
		for i := range v1 {
			if cmplx.Abs(v1[i]-v2[i]) > 1e-6 {
				return false
			}
			if cmplx.Abs(v1[i]-(a[i]+b[i])) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMulDistributesOverAdd(t *testing.T) {
	tc := propContext(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randVec(rng, 8), randVec(rng, 8), randVec(rng, 8)
		ca, cb, cc := tc.encrypt(t, a), tc.encrypt(t, b), tc.encrypt(t, c)
		// (a+b)·c
		sum, err := tc.ev.Add(ca, cb)
		if err != nil {
			return false
		}
		lhs, err := tc.ev.MulRelin(sum, cc)
		if err != nil {
			return false
		}
		if lhs, err = tc.ev.Rescale(lhs); err != nil {
			return false
		}
		// a·c + b·c
		p1, err := tc.ev.MulRelin(ca, cc)
		if err != nil {
			return false
		}
		p2, err := tc.ev.MulRelin(cb, cc)
		if err != nil {
			return false
		}
		rhs, err := tc.ev.Add(p1, p2)
		if err != nil {
			return false
		}
		if rhs, err = tc.ev.Rescale(rhs); err != nil {
			return false
		}
		v1 := tc.decryptDecode(t, lhs, 8)
		v2 := tc.decryptDecode(t, rhs, 8)
		for i := range v1 {
			if cmplx.Abs(v1[i]-v2[i]) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRotationComposes(t *testing.T) {
	tc := propContext(t)
	slots := tc.params.Slots()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randVec(rng, slots)
		ct := tc.encrypt(t, v)
		// rot1(rot2(x)) == rot3(x)
		r2, err := tc.ev.Rotate(ct, 2)
		if err != nil {
			return false
		}
		r12, err := tc.ev.Rotate(r2, 1)
		if err != nil {
			return false
		}
		r3, err := tc.ev.Rotate(ct, 3)
		if err != nil {
			return false
		}
		v1 := tc.decryptDecode(t, r12, slots)
		v2 := tc.decryptDecode(t, r3, slots)
		for i := range v1 {
			if cmplx.Abs(v1[i]-v2[i]) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyConjugationInvolution(t *testing.T) {
	tc := propContext(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randVec(rng, 8)
		ct := tc.encrypt(t, v)
		c1, err := tc.ev.Conjugate(ct)
		if err != nil {
			return false
		}
		c2, err := tc.ev.Conjugate(c1)
		if err != nil {
			return false
		}
		got := tc.decryptDecode(t, c2, 8)
		for i := range v {
			if cmplx.Abs(got[i]-v[i]) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEvaluatorOps(b *testing.B) {
	params, err := NewParameters(ParametersLiteral{
		LogN: 12, LogQ: []int{55, 45, 45, 45, 45, 45}, LogP: []int{58, 58}, LogScale: 45, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	kg := NewKeyGenerator(params)
	sk, _ := kg.GenSecretKey()
	pk, _ := kg.GenPublicKey(sk)
	rlk, _ := kg.GenRelinKey(sk)
	rtks, _ := kg.GenRotationKeySet(sk, []int{1}, false)
	enc := NewEncoder(params)
	encr := NewEncryptor(params, pk)
	ev := NewEvaluator(params, rlk, rtks)
	pt, _ := enc.Encode(make([]complex128, params.Slots()), params.MaxLevel(), params.DefaultScale())
	ct, _ := encr.Encrypt(pt)

	b.Run("Encrypt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := encr.Encrypt(pt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MulRelin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ev.MulRelin(ct, ct); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Rotate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ev.Rotate(ct, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Rescale", func(b *testing.B) {
		prod, _ := ev.MulRelin(ct, ct)
		for i := 0; i < b.N; i++ {
			if _, err := ev.Rescale(prod); err != nil {
				b.Fatal(err)
			}
		}
	})
}
