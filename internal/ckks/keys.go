package ckks

import (
	"fmt"
	"math/big"

	"cinnamon/internal/ring"
	"cinnamon/internal/rns"
)

// SecretKey is the ternary secret s, stored in the NTT domain over the full
// Q ∪ P universe so it can be restricted to any level.
type SecretKey struct {
	S *ring.Poly
}

// PublicKey is an encryption key (b, a) = (−a·s + e, a) over the full
// ciphertext chain Q, in the NTT domain.
type PublicKey struct {
	B, A *ring.Poly
}

// EvalKey is a keyswitching key from some key s' to the canonical secret s,
// in the hybrid (digit-decomposed) form of paper Fig. 4: one (b_d, a_d)
// pair per digit, over Q ∪ P, NTT domain, where
// b_d = −a_d·s + e_d + P·g_d·s' and g_d is the digit recombination factor.
//
// DigitSets records the chain-index partition the key was generated for.
// Nil means the default contiguous alpha-blocks of the parameter set; the
// output-aggregation keyswitch (paper Fig. 8c) uses modular per-chip
// partitions instead.
type EvalKey struct {
	B, A      []*ring.Poly // indexed by digit
	DigitSets [][]int
}

// Digits returns the number of digits in the key.
func (k *EvalKey) Digits() int { return len(k.B) }

// KeyGenerator derives all key material deterministically from the
// parameter seed.
type KeyGenerator struct {
	params  *Parameters
	sampler *ring.Sampler
}

// NewKeyGenerator returns a generator seeded from params.Seed().
func NewKeyGenerator(params *Parameters) *KeyGenerator {
	return &KeyGenerator{params: params, sampler: ring.NewSampler(params.Ring, params.Seed())}
}

// GenSecretKey samples a ternary secret over Q ∪ P (sparse when the
// parameters specify a Hamming weight).
func (kg *KeyGenerator) GenSecretKey() (*SecretKey, error) {
	var s *ring.Poly
	if h := kg.params.HammingWeight(); h > 0 {
		s = kg.sampler.TernarySparsePoly(kg.params.QPBasis(), h)
	} else {
		s = kg.sampler.TernaryPoly(kg.params.QPBasis())
	}
	if err := kg.params.Ring.NTT(s); err != nil {
		return nil, err
	}
	return &SecretKey{S: s}, nil
}

// GenPublicKey derives (−a·s + e, a) over the full chain Q.
func (kg *KeyGenerator) GenPublicKey(sk *SecretKey) (*PublicKey, error) {
	r := kg.params.Ring
	qb := kg.params.QBasis
	a := kg.sampler.UniformPoly(qb)
	a.IsNTT = true // uniform residues are uniform in either domain
	e := kg.sampler.GaussianPoly(qb)
	if err := r.NTT(e); err != nil {
		return nil, err
	}
	sQ, err := restrict(sk.S, qb)
	if err != nil {
		return nil, err
	}
	b := r.NewPoly(qb)
	if err := r.MulCoeffs(a, sQ, b); err != nil {
		return nil, err
	}
	r.Neg(b, b)
	if err := r.Add(b, e, b); err != nil {
		return nil, err
	}
	return &PublicKey{B: b, A: a}, nil
}

// GenEvalKey builds a keyswitching key from sOld (NTT, over Q ∪ P) to the
// canonical secret sk, using the parameter set's contiguous digit blocks.
func (kg *KeyGenerator) GenEvalKey(sOld *ring.Poly, sk *SecretKey) (*EvalKey, error) {
	params := kg.params
	sets := make([][]int, 0, params.Digits())
	for i := 0; i < params.Digits(); i++ {
		lo, hi, ok := params.DigitRange(i, params.MaxLevel())
		if !ok {
			break
		}
		set := make([]int, 0, hi-lo)
		for j := lo; j < hi; j++ {
			set = append(set, j)
		}
		sets = append(sets, set)
	}
	evk, err := kg.GenEvalKeyDigits(sOld, sk, sets)
	if err != nil {
		return nil, err
	}
	evk.DigitSets = nil // marker for the default partition
	return evk, nil
}

// GenEvalKeyDigits builds a keyswitching key for an arbitrary partition of
// the full chain indices into digits. Every chain index must appear in
// exactly one digit.
func (kg *KeyGenerator) GenEvalKeyDigits(sOld *ring.Poly, sk *SecretKey, digits [][]int) (*EvalKey, error) {
	params, r := kg.params, kg.params.Ring
	qp := params.QPBasis()
	if !sOld.Basis.Equal(qp) || !sOld.IsNTT {
		return nil, fmt.Errorf("ckks: source key must be NTT over Q∪P")
	}
	seen := make([]bool, params.QBasis.Len())
	for _, set := range digits {
		for _, j := range set {
			if j < 0 || j >= len(seen) || seen[j] {
				return nil, fmt.Errorf("ckks: digit partition is not a partition of chain indices")
			}
			seen[j] = true
		}
	}
	for j, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("ckks: chain index %d missing from digit partition", j)
		}
	}
	d := len(digits)
	evk := &EvalKey{B: make([]*ring.Poly, d), A: make([]*ring.Poly, d), DigitSets: digits}
	for i := 0; i < d; i++ {
		gRes, err := digitFactorRNSForSet(params, digits[i])
		if err != nil {
			return nil, err
		}
		a := kg.sampler.UniformPoly(qp)
		a.IsNTT = true
		e := kg.sampler.GaussianPoly(qp)
		if err := r.NTT(e); err != nil {
			return nil, err
		}
		b := r.NewPoly(qp)
		if err := r.MulCoeffs(a, sk.S, b); err != nil {
			return nil, err
		}
		r.Neg(b, b)
		if err := r.Add(b, e, b); err != nil {
			return nil, err
		}
		// b += (P·g_i)·s_old
		t := r.NewPoly(qp)
		if err := r.MulScalarBigRNS(sOld, gRes, t); err != nil {
			return nil, err
		}
		if err := r.Add(b, t, b); err != nil {
			return nil, err
		}
		evk.B[i], evk.A[i] = b, a
	}
	return evk, nil
}

// GenRelinKey builds the relinearization key (s² → s).
func (kg *KeyGenerator) GenRelinKey(sk *SecretKey) (*EvalKey, error) {
	r := kg.params.Ring
	s2 := r.NewPoly(kg.params.QPBasis())
	if err := r.MulCoeffs(sk.S, sk.S, s2); err != nil {
		return nil, err
	}
	return kg.GenEvalKey(s2, sk)
}

// GenRotationKey builds the keyswitching key for rotation by k slots
// (σ_g(s) → s with g = 5^k).
func (kg *KeyGenerator) GenRotationKey(sk *SecretKey, k int) (*EvalKey, error) {
	r := kg.params.Ring
	g := r.GaloisElementForRotation(k)
	sRot := r.NewPoly(kg.params.QPBasis())
	if err := r.Automorphism(sk.S, g, sRot); err != nil {
		return nil, err
	}
	return kg.GenEvalKey(sRot, sk)
}

// GenConjugationKey builds the keyswitching key for complex conjugation.
func (kg *KeyGenerator) GenConjugationKey(sk *SecretKey) (*EvalKey, error) {
	r := kg.params.Ring
	sConj := r.NewPoly(kg.params.QPBasis())
	if err := r.Automorphism(sk.S, r.GaloisElementForConjugation(), sConj); err != nil {
		return nil, err
	}
	return kg.GenEvalKey(sConj, sk)
}

// RotationKeySet holds rotation keys by slot offset plus the conjugation
// key; the evaluator looks keys up here.
type RotationKeySet struct {
	Keys map[int]*EvalKey
	Conj *EvalKey
}

// GenRotationKeySet builds keys for every offset in ks (and conjugation if
// withConj).
func (kg *KeyGenerator) GenRotationKeySet(sk *SecretKey, ks []int, withConj bool) (*RotationKeySet, error) {
	set := &RotationKeySet{Keys: map[int]*EvalKey{}}
	for _, k := range ks {
		if _, ok := set.Keys[k]; ok {
			continue
		}
		rk, err := kg.GenRotationKey(sk, k)
		if err != nil {
			return nil, err
		}
		set.Keys[k] = rk
	}
	if withConj {
		ck, err := kg.GenConjugationKey(sk)
		if err != nil {
			return nil, err
		}
		set.Conj = ck
	}
	return set, nil
}

// digitFactorRNSForSet returns the residues over Q ∪ P of the scalar P·g_d
// where g_d = D̂_d·[D̂_d⁻¹]_{D_d} mod Q is the recombination factor for the
// digit covering the given chain indices. Residues at the P moduli are zero
// since P divides P·g_d.
func digitFactorRNSForSet(params *Parameters, set []int) ([]uint64, error) {
	qb, pb := params.QBasis, params.PBasis
	if len(set) == 0 {
		return nil, fmt.Errorf("ckks: empty digit")
	}
	Q := qb.Product()
	D := big.NewInt(1)
	for _, j := range set {
		D.Mul(D, new(big.Int).SetUint64(qb.Moduli[j]))
	}
	Dhat := new(big.Int).Div(Q, D)
	t := new(big.Int).ModInverse(new(big.Int).Mod(Dhat, D), D)
	if t == nil {
		return nil, fmt.Errorf("ckks: digit %v factor not invertible", set)
	}
	g := new(big.Int).Mul(Dhat, t)
	g.Mod(g, Q)
	g.Mul(g, pb.Product()) // P·g_d
	res := make([]uint64, qb.Len()+pb.Len())
	tmp := new(big.Int)
	for j, q := range qb.Moduli {
		res[j] = tmp.Mod(g, new(big.Int).SetUint64(q)).Uint64()
	}
	// residues at P moduli are 0 (already zeroed)
	return res, nil
}

// restrict delegates to ring.Restrict (shared limb views, target order).
func restrict(p *ring.Poly, target rns.Basis) (*ring.Poly, error) {
	return ring.Restrict(p, target)
}
