package ckks

import (
	"fmt"
	"math"

	"cinnamon/internal/ring"
)

// Ciphertext is a CKKS ciphertext (C0, C1) in the NTT domain with scale
// bookkeeping: Dec(ct) = C0 + C1·s ≈ Δ·m.
type Ciphertext struct {
	C0, C1 *ring.Poly
	Scale  float64
}

// Level returns the ciphertext level (limbs − 1).
func (ct *Ciphertext) Level() int { return ct.C0.Basis.Len() - 1 }

// Copy deep-copies the ciphertext.
func (ct *Ciphertext) Copy() *Ciphertext {
	return &Ciphertext{C0: ct.C0.Copy(), C1: ct.C1.Copy(), Scale: ct.Scale}
}

// Encryptor encrypts plaintexts under a public key.
type Encryptor struct {
	params  *Parameters
	pk      *PublicKey
	sampler *ring.Sampler
}

// NewEncryptor returns an encryptor. The sampler seed is offset from the
// parameter seed so encryption randomness differs from key material.
func NewEncryptor(params *Parameters, pk *PublicKey) *Encryptor {
	return &Encryptor{params: params, pk: pk, sampler: ring.NewSampler(params.Ring, params.Seed()+0x517cc1b7)}
}

// Encrypt encrypts pt at the plaintext's level:
// (C0, C1) = (b·u + e0 + m, a·u + e1).
func (e *Encryptor) Encrypt(pt *Plaintext) (*Ciphertext, error) {
	r := e.params.Ring
	basis := pt.Poly.Basis
	if !pt.Poly.IsNTT {
		return nil, fmt.Errorf("ckks: plaintext must be in NTT domain")
	}
	pkb, err := restrict(e.pk.B, basis)
	if err != nil {
		return nil, err
	}
	pka, err := restrict(e.pk.A, basis)
	if err != nil {
		return nil, err
	}
	u := e.sampler.ZOPoly(basis)
	if err := r.NTT(u); err != nil {
		return nil, err
	}
	e0 := e.sampler.GaussianPoly(basis)
	e1 := e.sampler.GaussianPoly(basis)
	if err := r.NTT(e0); err != nil {
		return nil, err
	}
	if err := r.NTT(e1); err != nil {
		return nil, err
	}
	c0 := r.NewPoly(basis)
	if err := r.MulCoeffs(pkb, u, c0); err != nil {
		return nil, err
	}
	if err := r.Add(c0, e0, c0); err != nil {
		return nil, err
	}
	if err := r.Add(c0, pt.Poly, c0); err != nil {
		return nil, err
	}
	c1 := r.NewPoly(basis)
	if err := r.MulCoeffs(pka, u, c1); err != nil {
		return nil, err
	}
	if err := r.Add(c1, e1, c1); err != nil {
		return nil, err
	}
	return &Ciphertext{C0: c0, C1: c1, Scale: pt.Scale}, nil
}

// Decryptor recovers plaintexts with the secret key.
type Decryptor struct {
	params *Parameters
	sk     *SecretKey
}

// NewDecryptor returns a decryptor for sk.
func NewDecryptor(params *Parameters, sk *SecretKey) *Decryptor {
	return &Decryptor{params: params, sk: sk}
}

// Decrypt computes C0 + C1·s at the ciphertext level.
func (d *Decryptor) Decrypt(ct *Ciphertext) (*Plaintext, error) {
	r := d.params.Ring
	basis := ct.C0.Basis
	s, err := restrict(d.sk.S, basis)
	if err != nil {
		return nil, err
	}
	m := r.NewPoly(basis)
	if err := r.MulCoeffs(ct.C1, s, m); err != nil {
		return nil, err
	}
	if err := r.Add(m, ct.C0, m); err != nil {
		return nil, err
	}
	return &Plaintext{Poly: m, Scale: ct.Scale, LevelV: ct.Level()}, nil
}

// sameScale reports whether two scales agree to within the alignment
// tolerance homomorphic addition requires. Rescaling by primes that are
// only approximately the scale introduces relative drift of ~2^-30 per
// level; treating scales within 2^-20 as equal absorbs that drift while
// still rejecting genuinely mismatched operands.
func sameScale(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*math.Max(math.Abs(a), math.Abs(b))
}
