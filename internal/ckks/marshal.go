package ckks

import (
	"encoding/binary"
	"fmt"
	"io"

	"cinnamon/internal/ring"
	"cinnamon/internal/rns"
)

// Binary serialization for ciphertexts and evaluation keys, so a client
// and server can actually exchange encrypted data — the deployment surface
// any downstream user of the library needs. The format is little-endian:
// a small header (magic, domain flag, scale, limb count, ring dimension)
// followed by per-limb modulus + coefficients.

const ctMagic = 0x43494e31 // "CIN1"

func writePoly(w io.Writer, p *ring.Poly) error {
	hdr := []uint64{uint64(len(p.Limbs)), 0}
	if p.IsNTT {
		hdr[1] = 1
	}
	if len(p.Limbs) > 0 {
		hdr = append(hdr, uint64(len(p.Limbs[0])))
	} else {
		hdr = append(hdr, 0)
	}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return err
	}
	for j, limb := range p.Limbs {
		if err := binary.Write(w, binary.LittleEndian, p.Basis.Moduli[j]); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, limb); err != nil {
			return err
		}
	}
	return nil
}

func readPoly(r io.Reader) (*ring.Poly, error) {
	hdr := make([]uint64, 3)
	if err := binary.Read(r, binary.LittleEndian, hdr); err != nil {
		return nil, err
	}
	limbs, isNTT, n := int(hdr[0]), hdr[1] == 1, int(hdr[2])
	if limbs < 0 || limbs > 1<<16 || n < 0 || n > 1<<20 {
		return nil, fmt.Errorf("ckks: implausible polynomial header (%d limbs, %d coeffs)", limbs, n)
	}
	moduli := make([]uint64, limbs)
	data := make([][]uint64, limbs)
	for j := 0; j < limbs; j++ {
		if err := binary.Read(r, binary.LittleEndian, &moduli[j]); err != nil {
			return nil, err
		}
		data[j] = make([]uint64, n)
		if err := binary.Read(r, binary.LittleEndian, data[j]); err != nil {
			return nil, err
		}
		for _, c := range data[j] {
			if c >= moduli[j] {
				return nil, fmt.Errorf("ckks: coefficient %d out of range for modulus %d", c, moduli[j])
			}
		}
	}
	basis, err := rns.NewBasis(moduli)
	if err != nil {
		return nil, err
	}
	return &ring.Poly{Basis: basis, Limbs: data, IsNTT: isNTT}, nil
}

// Write serializes the ciphertext.
func (ct *Ciphertext) Write(w io.Writer) error {
	if err := binary.Write(w, binary.LittleEndian, uint64(ctMagic)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, ct.Scale); err != nil {
		return err
	}
	if err := writePoly(w, ct.C0); err != nil {
		return err
	}
	return writePoly(w, ct.C1)
}

// ReadCiphertext deserializes a ciphertext and validates it against the
// parameter set (basis must be a chain prefix, dimensions must match).
func ReadCiphertext(r io.Reader, params *Parameters) (*Ciphertext, error) {
	var magic uint64
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != ctMagic {
		return nil, fmt.Errorf("ckks: bad ciphertext magic %#x", magic)
	}
	var scale float64
	if err := binary.Read(r, binary.LittleEndian, &scale); err != nil {
		return nil, err
	}
	if !(scale > 0) {
		return nil, fmt.Errorf("ckks: invalid scale %g", scale)
	}
	c0, err := readPoly(r)
	if err != nil {
		return nil, err
	}
	c1, err := readPoly(r)
	if err != nil {
		return nil, err
	}
	for _, p := range []*ring.Poly{c0, c1} {
		if len(p.Limbs) == 0 || len(p.Limbs[0]) != params.N() {
			return nil, fmt.Errorf("ckks: ring dimension mismatch")
		}
		if !p.Basis.Equal(params.QBasis.Prefix(p.Basis.Len())) {
			return nil, fmt.Errorf("ckks: basis is not a chain prefix of the parameter set")
		}
	}
	if c0.Basis.Len() != c1.Basis.Len() {
		return nil, fmt.Errorf("ckks: component level mismatch")
	}
	return &Ciphertext{C0: c0, C1: c1, Scale: scale}, nil
}

// Write serializes an evaluation key (all digits, both halves).
func (k *EvalKey) Write(w io.Writer) error {
	if err := binary.Write(w, binary.LittleEndian, uint64(len(k.B))); err != nil {
		return err
	}
	for d := range k.B {
		if err := writePoly(w, k.B[d]); err != nil {
			return err
		}
		if err := writePoly(w, k.A[d]); err != nil {
			return err
		}
	}
	return nil
}

// ReadEvalKey deserializes an evaluation key (default digit partition).
func ReadEvalKey(r io.Reader, params *Parameters) (*EvalKey, error) {
	var digits uint64
	if err := binary.Read(r, binary.LittleEndian, &digits); err != nil {
		return nil, err
	}
	if digits == 0 || digits > 1<<10 {
		return nil, fmt.Errorf("ckks: implausible digit count %d", digits)
	}
	k := &EvalKey{B: make([]*ring.Poly, digits), A: make([]*ring.Poly, digits)}
	for d := 0; d < int(digits); d++ {
		var err error
		if k.B[d], err = readPoly(r); err != nil {
			return nil, err
		}
		if k.A[d], err = readPoly(r); err != nil {
			return nil, err
		}
		for _, p := range []*ring.Poly{k.B[d], k.A[d]} {
			if !p.Basis.Equal(params.QPBasis()) {
				return nil, fmt.Errorf("ckks: evaluation key digit %d is not over Q∪P", d)
			}
		}
	}
	return k, nil
}
