package ckks

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// testContext bundles everything a scheme test needs.
type testContext struct {
	params *Parameters
	enc    *Encoder
	kg     *KeyGenerator
	sk     *SecretKey
	pk     *PublicKey
	rlk    *EvalKey
	encr   *Encryptor
	decr   *Decryptor
	ev     *Evaluator
}

func newTestContext(t testing.TB, rotations []int) *testContext {
	t.Helper()
	params, err := NewParameters(ParametersLiteral{
		LogN:     11,
		LogQ:     []int{55, 45, 45, 45, 45},
		LogP:     []int{58, 58},
		LogScale: 45,
		Seed:     1234,
	})
	if err != nil {
		t.Fatal(err)
	}
	kg := NewKeyGenerator(params)
	sk, err := kg.GenSecretKey()
	if err != nil {
		t.Fatal(err)
	}
	pk, err := kg.GenPublicKey(sk)
	if err != nil {
		t.Fatal(err)
	}
	rlk, err := kg.GenRelinKey(sk)
	if err != nil {
		t.Fatal(err)
	}
	var rtks *RotationKeySet
	if rotations != nil {
		rtks, err = kg.GenRotationKeySet(sk, rotations, true)
		if err != nil {
			t.Fatal(err)
		}
	}
	return &testContext{
		params: params,
		enc:    NewEncoder(params),
		kg:     kg,
		sk:     sk,
		pk:     pk,
		rlk:    rlk,
		encr:   NewEncryptor(params, pk),
		decr:   NewDecryptor(params, sk),
		ev:     NewEvaluator(params, rlk, rtks),
	}
}

func randomComplex(n int, bound float64, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex((rng.Float64()*2-1)*bound, (rng.Float64()*2-1)*bound)
	}
	return v
}

func maxErr(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if e := cmplx.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func (tc *testContext) decryptDecode(t testing.TB, ct *Ciphertext, slots int) []complex128 {
	t.Helper()
	pt, err := tc.decr.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	v, err := tc.enc.Decode(pt, slots)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestParametersValidation(t *testing.T) {
	base := ParametersLiteral{LogN: 5, LogQ: []int{45, 40}, LogP: []int{50}, LogScale: 40}
	if _, err := NewParameters(base); err != nil {
		t.Fatal(err)
	}
	bad := base
	bad.LogN = 2
	if _, err := NewParameters(bad); err == nil {
		t.Fatal("expected LogN error")
	}
	bad = base
	bad.LogQ = nil
	if _, err := NewParameters(bad); err == nil {
		t.Fatal("expected empty chain error")
	}
	bad = base
	bad.LogP = nil
	if _, err := NewParameters(bad); err == nil {
		t.Fatal("expected empty special error")
	}
	bad = base
	bad.LogScale = 5
	if _, err := NewParameters(bad); err == nil {
		t.Fatal("expected scale error")
	}
}

func TestParameterAccessors(t *testing.T) {
	p, err := NewParameters(ParametersLiteral{LogN: 6, LogQ: []int{45, 40, 40, 40}, LogP: []int{50, 50}, LogScale: 40})
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 64 || p.Slots() != 32 || p.MaxLevel() != 3 {
		t.Fatalf("accessors: N=%d slots=%d maxLevel=%d", p.N(), p.Slots(), p.MaxLevel())
	}
	if p.Alpha() != 2 || p.Digits() != 2 {
		t.Fatalf("alpha=%d digits=%d", p.Alpha(), p.Digits())
	}
	// Digit ranges at max level: [0,2), [2,4).
	lo, hi, ok := p.DigitRange(0, 3)
	if !ok || lo != 0 || hi != 2 {
		t.Fatalf("digit 0 range (%d,%d,%v)", lo, hi, ok)
	}
	lo, hi, ok = p.DigitRange(1, 3)
	if !ok || lo != 2 || hi != 4 {
		t.Fatalf("digit 1 range (%d,%d,%v)", lo, hi, ok)
	}
	// At level 1 the second digit is empty.
	if _, _, ok := p.DigitRange(1, 1); ok {
		t.Fatal("digit 1 should be empty at level 1")
	}
	// All moduli distinct across Q and P.
	seen := map[uint64]bool{}
	for _, q := range p.QPBasis().Moduli {
		if seen[q] {
			t.Fatalf("duplicate modulus %d", q)
		}
		seen[q] = true
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tc := newTestContext(t, nil)
	for _, slots := range []int{1, 8, tc.params.Slots()} {
		want := randomComplex(slots, 1.0, int64(slots))
		pt, err := tc.enc.Encode(want, tc.params.MaxLevel(), tc.params.DefaultScale())
		if err != nil {
			t.Fatal(err)
		}
		got, err := tc.enc.Decode(pt, slots)
		if err != nil {
			t.Fatal(err)
		}
		if e := maxErr(want, got); e > 1e-8 {
			t.Fatalf("slots=%d: encode/decode error %g", slots, e)
		}
	}
	if _, err := tc.enc.Encode(make([]complex128, 3), 0, tc.params.DefaultScale()); err == nil {
		t.Fatal("expected non-power-of-two slot error")
	}
}

func TestEncryptDecrypt(t *testing.T) {
	tc := newTestContext(t, nil)
	slots := tc.params.Slots()
	want := randomComplex(slots, 1.0, 5)
	pt, err := tc.enc.Encode(want, tc.params.MaxLevel(), tc.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	ct, err := tc.encr.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	got := tc.decryptDecode(t, ct, slots)
	if e := maxErr(want, got); e > 1e-6 {
		t.Fatalf("fresh encryption error %g", e)
	}
}

func TestHomomorphicAddSub(t *testing.T) {
	tc := newTestContext(t, nil)
	slots := 64
	va := randomComplex(slots, 1.0, 7)
	vb := randomComplex(slots, 1.0, 8)
	cta := tc.encrypt(t, va)
	ctb := tc.encrypt(t, vb)
	sum, err := tc.ev.Add(cta, ctb)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := tc.ev.Sub(cta, ctb)
	if err != nil {
		t.Fatal(err)
	}
	wantSum := make([]complex128, slots)
	wantDiff := make([]complex128, slots)
	for i := range va {
		wantSum[i] = va[i] + vb[i]
		wantDiff[i] = va[i] - vb[i]
	}
	if e := maxErr(wantSum, tc.decryptDecode(t, sum, slots)); e > 1e-6 {
		t.Fatalf("add error %g", e)
	}
	if e := maxErr(wantDiff, tc.decryptDecode(t, diff, slots)); e > 1e-6 {
		t.Fatalf("sub error %g", e)
	}
	neg := tc.ev.Neg(cta)
	wantNeg := make([]complex128, slots)
	for i := range va {
		wantNeg[i] = -va[i]
	}
	if e := maxErr(wantNeg, tc.decryptDecode(t, neg, slots)); e > 1e-6 {
		t.Fatalf("neg error %g", e)
	}
}

func (tc *testContext) encrypt(t testing.TB, v []complex128) *Ciphertext {
	t.Helper()
	pt, err := tc.enc.Encode(v, tc.params.MaxLevel(), tc.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	ct, err := tc.encr.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

func TestHomomorphicMulRelinRescale(t *testing.T) {
	tc := newTestContext(t, nil)
	slots := 64
	va := randomComplex(slots, 1.0, 9)
	vb := randomComplex(slots, 1.0, 10)
	cta := tc.encrypt(t, va)
	ctb := tc.encrypt(t, vb)
	prod, err := tc.ev.MulRelin(cta, ctb)
	if err != nil {
		t.Fatal(err)
	}
	prod, err = tc.ev.Rescale(prod)
	if err != nil {
		t.Fatal(err)
	}
	if prod.Level() != tc.params.MaxLevel()-1 {
		t.Fatalf("level after rescale = %d", prod.Level())
	}
	want := make([]complex128, slots)
	for i := range va {
		want[i] = va[i] * vb[i]
	}
	if e := maxErr(want, tc.decryptDecode(t, prod, slots)); e > 1e-4 {
		t.Fatalf("mul error %g", e)
	}
}

func TestMultiplicativeDepth(t *testing.T) {
	// Square repeatedly down the whole chain: x^(2^depth).
	tc := newTestContext(t, nil)
	slots := 16
	v := randomComplex(slots, 0.9, 11)
	ct := tc.encrypt(t, v)
	want := append([]complex128(nil), v...)
	for ct.Level() > 0 {
		var err error
		ct, err = tc.ev.MulRelin(ct, ct)
		if err != nil {
			t.Fatal(err)
		}
		ct, err = tc.ev.Rescale(ct)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			want[i] *= want[i]
		}
	}
	if e := maxErr(want, tc.decryptDecode(t, ct, slots)); e > 1e-2 {
		t.Fatalf("deep circuit error %g", e)
	}
	if _, err := tc.ev.Rescale(ct); err == nil {
		t.Fatal("expected level-0 rescale error")
	}
}

func TestMulPlainAndAddPlain(t *testing.T) {
	tc := newTestContext(t, nil)
	slots := 32
	va := randomComplex(slots, 1.0, 12)
	vb := randomComplex(slots, 1.0, 13)
	ct := tc.encrypt(t, va)
	ptb, err := tc.enc.Encode(vb, ct.Level(), tc.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	sum, err := tc.ev.AddPlain(ct, ptb)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, slots)
	for i := range want {
		want[i] = va[i] + vb[i]
	}
	if e := maxErr(want, tc.decryptDecode(t, sum, slots)); e > 1e-6 {
		t.Fatalf("addplain error %g", e)
	}
	prod, err := tc.ev.MulPlain(ct, ptb)
	if err != nil {
		t.Fatal(err)
	}
	prod, err = tc.ev.Rescale(prod)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		want[i] = va[i] * vb[i]
	}
	if e := maxErr(want, tc.decryptDecode(t, prod, slots)); e > 1e-4 {
		t.Fatalf("mulplain error %g", e)
	}
}

func TestRotationAndConjugation(t *testing.T) {
	rots := []int{1, 2, 5, -1}
	tc := newTestContext(t, rots)
	slots := tc.params.Slots()
	v := randomComplex(slots, 1.0, 14)
	ct := tc.encrypt(t, v)
	for _, k := range rots {
		rot, err := tc.ev.Rotate(ct, k)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]complex128, slots)
		for i := range want {
			want[i] = v[((i+k)%slots+slots)%slots]
		}
		if e := maxErr(want, tc.decryptDecode(t, rot, slots)); e > 1e-4 {
			t.Fatalf("rotation %d error %g", k, e)
		}
	}
	conj, err := tc.ev.Conjugate(ct)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, slots)
	for i := range want {
		want[i] = cmplx.Conj(v[i])
	}
	if e := maxErr(want, tc.decryptDecode(t, conj, slots)); e > 1e-4 {
		t.Fatalf("conjugation error %g", e)
	}
	if _, err := tc.ev.Rotate(ct, 3); err == nil {
		t.Fatal("expected missing-rotation-key error")
	}
}

func TestRotateZeroIsIdentity(t *testing.T) {
	tc := newTestContext(t, []int{1})
	v := randomComplex(8, 1.0, 15)
	ct := tc.encrypt(t, v)
	rot, err := tc.ev.Rotate(ct, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr(v, tc.decryptDecode(t, rot, 8)); e > 1e-6 {
		t.Fatalf("rotate-0 error %g", e)
	}
}

func TestAddMulConst(t *testing.T) {
	tc := newTestContext(t, nil)
	slots := 16
	v := randomComplex(slots, 1.0, 16)
	ct := tc.encrypt(t, v)
	c := complex(0.5, -0.25)
	added, err := tc.ev.AddConst(ct, c)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, slots)
	for i := range want {
		want[i] = v[i] + c
	}
	if e := maxErr(want, tc.decryptDecode(t, added, slots)); e > 1e-6 {
		t.Fatalf("addconst error %g", e)
	}
	mul, err := tc.ev.MulConst(ct, c)
	if err != nil {
		t.Fatal(err)
	}
	mul, err = tc.ev.Rescale(mul)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		want[i] = v[i] * c
	}
	if e := maxErr(want, tc.decryptDecode(t, mul, slots)); e > 1e-4 {
		t.Fatalf("mulconst error %g", e)
	}
}

func TestLevelAndScaleMismatchErrors(t *testing.T) {
	tc := newTestContext(t, nil)
	v := randomComplex(8, 1.0, 17)
	a := tc.encrypt(t, v)
	b := tc.encrypt(t, v)
	dropped, err := tc.ev.DropLevel(b, b.Level()-1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.ev.Add(a, dropped); err == nil {
		t.Fatal("expected level mismatch")
	}
	scaled := b.Copy()
	scaled.Scale *= 2
	if _, err := tc.ev.Add(a, scaled); err == nil {
		t.Fatal("expected scale mismatch")
	}
	if _, err := tc.ev.DropLevel(a, a.Level()+1); err == nil {
		t.Fatal("expected drop-level range error")
	}
}

func TestHomomorphicDotProductWithRotations(t *testing.T) {
	// Rotate-and-add tree sums all slots: a common FHE kernel pattern.
	rots := []int{1, 2, 4, 8}
	tc := newTestContext(t, rots)
	slots := 16
	v := randomComplex(slots, 1.0, 18)
	ct := tc.encrypt(t, v)
	var total complex128
	for _, x := range v {
		total += x
	}
	for k := 1; k < slots; k <<= 1 {
		rot, err := tc.ev.Rotate(ct, k)
		if err != nil {
			t.Fatal(err)
		}
		ct, err = tc.ev.Add(ct, rot)
		if err != nil {
			t.Fatal(err)
		}
	}
	got := tc.decryptDecode(t, ct, slots)
	if e := cmplx.Abs(got[0] - total); e > 1e-4 {
		t.Fatalf("slot-sum error %g", e)
	}
}

func TestDecryptNoiseBudget(t *testing.T) {
	// Fresh ciphertext noise should be tiny relative to the scale.
	tc := newTestContext(t, nil)
	v := make([]complex128, 8) // zeros
	ct := tc.encrypt(t, v)
	got := tc.decryptDecode(t, ct, 8)
	for i, g := range got {
		if cmplx.Abs(g) > 1e-6 {
			t.Fatalf("slot %d noise %g too large", i, cmplx.Abs(g))
		}
	}
}

func TestScaleTracking(t *testing.T) {
	tc := newTestContext(t, nil)
	v := randomComplex(8, 1.0, 19)
	ct := tc.encrypt(t, v)
	if math.Abs(ct.Scale-tc.params.DefaultScale()) > 1 {
		t.Fatalf("fresh scale %g", ct.Scale)
	}
	prod, err := tc.ev.MulRelin(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	if want := ct.Scale * ct.Scale; math.Abs(prod.Scale-want)/want > 1e-12 {
		t.Fatalf("product scale %g, want %g", prod.Scale, want)
	}
	res, err := tc.ev.Rescale(prod)
	if err != nil {
		t.Fatal(err)
	}
	ql := float64(tc.params.QBasis.Moduli[tc.params.MaxLevel()])
	if want := prod.Scale / ql; math.Abs(res.Scale-want)/want > 1e-12 {
		t.Fatalf("rescaled scale %g, want %g", res.Scale, want)
	}
}
