package ckks

import (
	"bytes"
	"testing"
)

// smallMarshalContext builds a tiny parameter set so byte-level
// robustness tests stay fast.
func smallMarshalContext(t testing.TB) (*Parameters, *Ciphertext) {
	t.Helper()
	params, err := NewParameters(ParametersLiteral{
		LogN: 5, LogQ: []int{45, 40}, LogP: []int{50}, LogScale: 40, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	kg := NewKeyGenerator(params)
	sk, err := kg.GenSecretKey()
	if err != nil {
		t.Fatal(err)
	}
	pk, err := kg.GenPublicKey(sk)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(params)
	v := randomComplex(params.Slots(), 1.0, 77)
	pt, err := enc.Encode(v, params.MaxLevel(), params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	ct, err := NewEncryptor(params, pk).Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	return params, ct
}

// FuzzCiphertextRoundTrip throws arbitrary bytes at the untrusted
// ciphertext parser. The invariants: never panic, and anything the
// parser accepts must re-marshal to a byte-identical image (so a
// malicious body cannot smuggle state that survives validation but
// changes on the way back out).
func FuzzCiphertextRoundTrip(f *testing.F) {
	params, ct := smallMarshalContext(f)

	var valid bytes.Buffer
	if err := ct.Write(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x31, 0x4e, 0x49, 0x43, 0, 0, 0, 0}) // magic, then nothing
	// Truncation seeds at structural boundaries.
	for _, cut := range []int{1, 8, 16, 17, 40, valid.Len() - 1} {
		if cut < valid.Len() {
			f.Add(valid.Bytes()[:cut])
		}
	}
	// A corrupt-header seed: implausible limb count.
	corrupt := append([]byte(nil), valid.Bytes()...)
	corrupt[16] = 0xff
	corrupt[17] = 0xff
	corrupt[18] = 0xff
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadCiphertext(bytes.NewReader(data), params)
		if err != nil {
			return // rejected — fine, as long as it didn't panic
		}
		var out bytes.Buffer
		if err := got.Write(&out); err != nil {
			t.Fatalf("accepted ciphertext failed to re-marshal: %v", err)
		}
		again, err := ReadCiphertext(bytes.NewReader(out.Bytes()), params)
		if err != nil {
			t.Fatalf("re-marshaled ciphertext rejected: %v", err)
		}
		if !again.C0.Equal(got.C0) || !again.C1.Equal(got.C1) || again.Scale != got.Scale {
			t.Fatal("round trip is not a fixed point")
		}
	})
}

// TestReadCiphertextTruncated feeds every prefix of a valid wire image
// to the parser: all must fail cleanly (no panic, no partial accept).
func TestReadCiphertextTruncated(t *testing.T) {
	params, ct := smallMarshalContext(t)
	var buf bytes.Buffer
	if err := ct.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 0; cut < len(raw); cut++ {
		if _, err := ReadCiphertext(bytes.NewReader(raw[:cut]), params); err == nil {
			t.Fatalf("truncation at %d of %d bytes accepted", cut, len(raw))
		}
	}
	// The full image still parses (the loop above didn't just prove the
	// parser rejects everything).
	if _, err := ReadCiphertext(bytes.NewReader(raw), params); err != nil {
		t.Fatalf("full image rejected: %v", err)
	}
}

// TestReadCiphertextCorruptHeader corrupts each header field in turn.
func TestReadCiphertextCorruptHeader(t *testing.T) {
	params, ct := smallMarshalContext(t)
	var buf bytes.Buffer
	if err := ct.Write(&buf); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(b []byte)
	}{
		{"magic", func(b []byte) { b[3] ^= 0x40 }},
		{"scale-zero", func(b []byte) {
			for i := 8; i < 16; i++ {
				b[i] = 0
			}
		}},
		{"scale-negative", func(b []byte) { b[15] |= 0x80 }},
		{"limb-count-huge", func(b []byte) { b[18] = 0xff }},
		{"ring-dim-mismatch", func(b []byte) { b[32] ^= 0x01 }},
		{"modulus-off-chain", func(b []byte) { b[40] ^= 0x01 }},
	}
	for _, tc := range cases {
		raw := append([]byte(nil), buf.Bytes()...)
		tc.mutate(raw)
		if _, err := ReadCiphertext(bytes.NewReader(raw), params); err == nil {
			t.Errorf("%s: corrupted header accepted", tc.name)
		}
	}
}

// TestReadEvalKeyTruncated does the truncation sweep for evaluation
// keys, sampling offsets (keys are big; every-byte would be slow).
func TestReadEvalKeyTruncated(t *testing.T) {
	tc := newTestContext(t, nil)
	var buf bytes.Buffer
	if err := tc.rlk.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{0, 1, 7, 8, 9, 31, 32, len(raw) / 3, len(raw) / 2, len(raw) - 1} {
		if _, err := ReadEvalKey(bytes.NewReader(raw[:cut]), tc.params); err == nil {
			t.Fatalf("truncation at %d of %d bytes accepted", cut, len(raw))
		}
	}
	// Implausible digit count is refused before any allocation.
	corrupt := append([]byte(nil), raw...)
	corrupt[2] = 0xff
	if _, err := ReadEvalKey(bytes.NewReader(corrupt), tc.params); err == nil {
		t.Fatal("huge digit count accepted")
	}
}
