//go:build !race

package ckks

const raceEnabled = false
