package ckks

import "testing"

func BenchmarkKeySwitchL8(b *testing.B) {
	lit := ParametersLiteral{LogN: 12, LogQ: []int{55, 45, 45, 45, 45, 45, 45, 45, 45}, LogP: []int{58, 58}, LogScale: 45, Seed: 20260805}
	params, err := NewParameters(lit)
	if err != nil {
		b.Fatal(err)
	}
	kg := NewKeyGenerator(params)
	sk, err := kg.GenSecretKey()
	if err != nil {
		b.Fatal(err)
	}
	pk, err := kg.GenPublicKey(sk)
	if err != nil {
		b.Fatal(err)
	}
	rlk, err := kg.GenRelinKey(sk)
	if err != nil {
		b.Fatal(err)
	}
	ev := NewEvaluator(params, rlk, nil)
	enc := NewEncoder(params)
	vals := make([]complex128, params.Slots())
	pt, err := enc.Encode(vals, params.MaxLevel(), params.DefaultScale())
	if err != nil {
		b.Fatal(err)
	}
	ct, err := NewEncryptor(params, pk).Encrypt(pt)
	if err != nil {
		b.Fatal(err)
	}
	r := params.Ring
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f0, f1, err := ev.KeySwitch(ct.C1, rlk)
		if err != nil {
			b.Fatal(err)
		}
		r.PutPoly(f0)
		r.PutPoly(f1)
	}
}
