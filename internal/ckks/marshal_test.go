package ckks

import (
	"bytes"
	"testing"
)

func TestCiphertextRoundTrip(t *testing.T) {
	tc := newTestContext(t, nil)
	v := randomComplex(16, 1.0, 55)
	ct := tc.encrypt(t, v)
	var buf bytes.Buffer
	if err := ct.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCiphertext(&buf, tc.params)
	if err != nil {
		t.Fatal(err)
	}
	if !got.C0.Equal(ct.C0) || !got.C1.Equal(ct.C1) || got.Scale != ct.Scale {
		t.Fatal("ciphertext round trip differs")
	}
	// The deserialized ciphertext must decrypt.
	out := tc.decryptDecode(t, got, 16)
	if e := maxErr(v, out); e > 1e-6 {
		t.Fatalf("round-tripped ciphertext decrypts with error %g", e)
	}
}

func TestCiphertextRoundTripAfterDropLevel(t *testing.T) {
	tc := newTestContext(t, nil)
	ct := tc.encrypt(t, randomComplex(8, 1.0, 56))
	low, err := tc.ev.DropLevel(ct, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := low.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCiphertext(&buf, tc.params)
	if err != nil {
		t.Fatal(err)
	}
	if got.Level() != 1 {
		t.Fatalf("level %d after round trip", got.Level())
	}
}

func TestReadCiphertextRejectsGarbage(t *testing.T) {
	tc := newTestContext(t, nil)
	if _, err := ReadCiphertext(bytes.NewReader([]byte{1, 2, 3}), tc.params); err == nil {
		t.Fatal("expected short-read error")
	}
	var buf bytes.Buffer
	ct := tc.encrypt(t, randomComplex(4, 1.0, 57))
	if err := ct.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[0] ^= 0xff // corrupt magic
	if _, err := ReadCiphertext(bytes.NewReader(raw), tc.params); err == nil {
		t.Fatal("expected magic error")
	}
	// Corrupt a coefficient beyond its modulus.
	buf.Reset()
	if err := ct.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw = buf.Bytes()
	for i := len(raw) - 8; i < len(raw); i++ {
		raw[i] = 0xff
	}
	if _, err := ReadCiphertext(bytes.NewReader(raw), tc.params); err == nil {
		t.Fatal("expected out-of-range coefficient error")
	}
}

func TestEvalKeyRoundTrip(t *testing.T) {
	tc := newTestContext(t, nil)
	var buf bytes.Buffer
	if err := tc.rlk.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEvalKey(&buf, tc.params)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digits() != tc.rlk.Digits() {
		t.Fatalf("digits %d != %d", got.Digits(), tc.rlk.Digits())
	}
	for d := 0; d < got.Digits(); d++ {
		if !got.B[d].Equal(tc.rlk.B[d]) || !got.A[d].Equal(tc.rlk.A[d]) {
			t.Fatalf("digit %d differs", d)
		}
	}
	// A round-tripped relinearization key must actually relinearize.
	ev := NewEvaluator(tc.params, got, nil)
	v := randomComplex(8, 1.0, 58)
	ct := tc.encrypt(t, v)
	prod, err := ev.MulRelin(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	prod, err = ev.Rescale(prod)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, 8)
	for i := range want {
		want[i] = v[i] * v[i]
	}
	if e := maxErr(want, tc.decryptDecode(t, prod, 8)); e > 1e-4 {
		t.Fatalf("round-tripped key mul error %g", e)
	}
}
