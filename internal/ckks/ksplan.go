package ckks

import (
	"fmt"

	"cinnamon/internal/ntt"
	"cinnamon/internal/ring"
	"cinnamon/internal/rns"
)

// KSPlan is the precompiled per-level keyswitch schedule (DESIGN.md §12):
// every quantity the hybrid keyswitch otherwise derives per call — digit
// ranges, complement bases, base converters, batch NTT plans, the mod-down
// plan and the evaluation-key limb indices — frozen at compile time. The
// serving registry builds plans for all levels once; a warm planned
// keyswitch then performs zero setup work and zero heap allocations.
type KSPlan struct {
	level  int
	sBasis rns.Basis // chain prefix Q_l
	union  rns.Basis // Q_l ∪ P
	evkIdx []int     // universe limb positions of the union moduli
	digits []ksDigit
	// zscale[j] is the scaled last-stage pair (wx, wxs, wy, wys) that makes
	// chain limb j's inverse transform emit its owning digit's
	// base-conversion z-value directly (ntt.ScaledLastPair with
	// s = (Q_d/q_j)⁻¹ mod q_j): the decompose needs no input copy, no
	// separate INTT pass and no z-stage multiply.
	zscale [][4]uint64

	nttS    *ntt.BatchPlan // batch plan covering Q_l (universe-aligned prefix)
	nttU    *ntt.BatchPlan // batch plan over the union basis
	modDown *ring.ModDownPlan
}

// ksDigit is one digit's frozen decomposition state.
type ksDigit struct {
	lo, hi int       // chain-index interval [lo, hi)
	digit  rns.Basis // the digit's own moduli
	comp   rns.Basis // union \ digit, in union order
	bc     *rns.BaseConverter
	// own[u] ≥ 0 marks union limb u as the digit's own chain limb (value
	// taken from the input directly); own[u] < 0 marks a base-converted
	// complement limb.
	own []int
}

// Level returns the ciphertext level the plan serves.
func (pl *KSPlan) Level() int { return pl.level }

// newKSPlan compiles the keyswitch plan for level l.
func (p *Parameters) newKSPlan(l int) (*KSPlan, error) {
	r := p.Ring
	if r.Plan() == nil {
		return nil, fmt.Errorf("ckks: ring has no NTT tables (lazy parameters)")
	}
	sBasis, err := p.BasisAtLevel(l)
	if err != nil {
		return nil, err
	}
	union, err := sBasis.Union(p.PBasis)
	if err != nil {
		return nil, err
	}
	evkIdx := make([]int, union.Len())
	for u, q := range union.Moduli {
		j, ok := r.UniverseIndex(q)
		if !ok {
			return nil, fmt.Errorf("ckks: union modulus %d outside universe", q)
		}
		evkIdx[u] = j
	}
	nttU, err := r.PlanForBasis(union)
	if err != nil {
		return nil, err
	}
	md, err := r.NewModDownPlan(sBasis, p.PBasis)
	if err != nil {
		return nil, err
	}
	pl := &KSPlan{
		level:   l,
		sBasis:  sBasis,
		union:   union,
		evkIdx:  evkIdx,
		nttS:    r.Plan(),
		nttU:    nttU,
		modDown: md,
	}
	for d := 0; ; d++ {
		lo, hi, ok := p.DigitRange(d, l)
		if !ok {
			break
		}
		digitBasis := rns.Basis{Moduli: sBasis.Moduli[lo:hi]}
		compMods := make([]uint64, 0, union.Len()-(hi-lo))
		compMods = append(compMods, sBasis.Moduli[:lo]...)
		compMods = append(compMods, sBasis.Moduli[hi:]...)
		compMods = append(compMods, union.Moduli[sBasis.Len():]...)
		compBasis := rns.Basis{Moduli: compMods}
		bc, err := ring.ConverterFor(digitBasis, compBasis)
		if err != nil {
			return nil, err
		}
		own := make([]int, union.Len())
		for u := range own {
			if u >= lo && u < hi {
				own[u] = u
			} else {
				own[u] = -1
			}
		}
		pl.digits = append(pl.digits, ksDigit{
			lo: lo, hi: hi,
			digit: digitBasis, comp: compBasis,
			bc: bc, own: own,
		})
	}
	pl.zscale = make([][4]uint64, sBasis.Len())
	for d := range pl.digits {
		dg := &pl.digits[d]
		for j := dg.lo; j < dg.hi; j++ {
			wx, wxs, wy, wys := pl.nttS.Table(j).ScaledLastPair(dg.bc.QHatInv(j - dg.lo))
			pl.zscale[j] = [4]uint64{wx, wxs, wy, wys}
		}
	}
	return pl, nil
}

// KSPlanAtLevel returns the keyswitch plan for level l, compiling it on
// first use. Plans are immutable and cached per parameter set; concurrent
// first calls may compile duplicates, of which one wins — both are valid.
// Returns an error on lazy (table-free) parameter sets.
func (p *Parameters) KSPlanAtLevel(l int) (*KSPlan, error) {
	if l < 0 || l >= len(p.ksPlans) {
		return nil, fmt.Errorf("ckks: level %d out of [0,%d]", l, len(p.ksPlans)-1)
	}
	if pl := p.ksPlans[l].Load(); pl != nil {
		return pl, nil
	}
	pl, err := p.newKSPlan(l)
	if err != nil {
		return nil, err
	}
	if !p.ksPlans[l].CompareAndSwap(nil, pl) {
		pl = p.ksPlans[l].Load()
	}
	return pl, nil
}

// CompilePlans eagerly compiles the keyswitch plans of every level, so
// steady-state serving never compiles on a request path. The serving
// registry calls this once at program-catalog build time. It is a no-op on
// lazy (table-free) parameter sets, which cannot execute anyway.
func (p *Parameters) CompilePlans() error {
	if p.Ring.Plan() == nil {
		return nil
	}
	for l := 0; l <= p.MaxLevel(); l++ {
		if _, err := p.KSPlanAtLevel(l); err != nil {
			return fmt.Errorf("ckks: compiling keyswitch plan at level %d: %w", l, err)
		}
	}
	return nil
}
