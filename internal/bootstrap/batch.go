package bootstrap

import (
	"fmt"
	"math"

	"cinnamon/internal/ckks"
)

// BatchItem is one ciphertext in a bootstrap batch. BS may differ per item
// (different tenants own different keys); items whose Bootstrappers share a
// Precomp additionally share the batched BSGS transform passes. After
// BootstrapBatch returns, exactly one of Out/Err is set.
type BatchItem struct {
	BS  *Bootstrapper
	CT  *ckks.Ciphertext
	Out *ckks.Ciphertext
	Err error
}

// BootstrapBatch refreshes a batch of level-0 ciphertexts together. The
// pipeline is phased so that the two expensive BSGS linear transforms
// (CoeffToSlot, SlotToCoeff) run as ONE shared pass per Precomp group —
// every baby-step rotation across all items is hoisted into a single
// fork-join batch — while the cheap per-item stages (ScaleUp, ModRaise,
// conjugate split, EvalMod, recombine) run item-at-a-time with exactly the
// operation order of a solo Bootstrap. Since every evaluator operation is
// deterministic, batched outputs are bit-identical to sequential ones.
// Failures poison only their own item.
func BootstrapBatch(items []*BatchItem) {
	groups := map[*Precomp][]*BatchItem{}
	for _, it := range items {
		if it.BS == nil {
			it.Err = fmt.Errorf("bootstrap: batch item has nil Bootstrapper")
			continue
		}
		groups[it.BS.pre] = append(groups[it.BS.pre], it)
	}
	for pre, group := range groups {
		bootstrapGroup(pre, group)
	}
}

func bootstrapGroup(pre *Precomp, items []*BatchItem) {
	// Phase 1 (per item): validate, ScaleUp to ≈ q0/2^H, ModRaise into the
	// full chain. Dec becomes S0·m + q0·I with small integer I.
	live := items[:0:0]
	raised := make([]*ckks.Ciphertext, 0, len(items))
	evs := make([]*ckks.Evaluator, 0, len(items))
	for _, it := range items {
		if it.Err = it.BS.validate(it.CT); it.Err != nil {
			continue
		}
		up := it.BS.ev.ScaleUp(it.CT, pre.scaleUp)
		r, err := it.BS.modRaise(up)
		if err != nil {
			it.Err = err
			continue
		}
		live = append(live, it)
		raised = append(raised, r)
		evs = append(evs, it.BS.ev)
	}
	if len(live) == 0 {
		return
	}
	// Phase 2 (batched): CoeffToSlot + rescale. Slots now hold
	// x_j = Δm_j/q0 + I_j (complex pairs).
	ts, errs := pre.c2s.EvaluateBatch(evs, pre.enc, raised)
	live, ts, evs = prune(live, ts, evs, errs)
	for k, it := range live {
		if ts[k], it.Err = it.BS.ev.Rescale(ts[k]); it.Err != nil {
			continue
		}
	}
	live, ts, evs = prune(live, ts, evs, nil)
	// Phase 3 (per item): conjugate split into 2·Re and 2·Im, EvalMod on
	// both halves (u = 2x ∈ [−2K, 2K] → sin(2πx)), recombine
	// t' = re' + i·im'.
	combs := make([]*ckks.Ciphertext, len(live))
	for k, it := range live {
		combs[k], it.Err = it.BS.evalModSplit(ts[k])
	}
	live, combs, evs = prune(live, combs, evs, nil)
	if len(live) == 0 {
		return
	}
	// Phase 4 (batched): SlotToCoeff + rescale restores the original slot
	// values at the exit level.
	outs, errs := pre.s2c.EvaluateBatch(evs, pre.enc, combs)
	live, outs, _ = prune(live, outs, evs, errs)
	delta := pre.params.DefaultScale()
	for k, it := range live {
		out, err := it.BS.ev.Rescale(outs[k])
		if err != nil {
			it.Err = err
			continue
		}
		// The composed circuit scale lands near Δ but not on it (the exact
		// value threads every prime and constant in the circuit); snap to
		// the exact default so downstream multiply chains don't amplify
		// the declaration drift past the evaluator's scale check. The
		// relative value error this folds in (≲1e-4) is far below the
		// circuit's own sine-approximation error.
		if math.Abs(out.Scale-delta) > 1e-4*delta {
			it.Err = fmt.Errorf("bootstrap: exit scale %g drifted beyond tolerance of the default %g", out.Scale, delta)
			continue
		}
		out.Scale = delta
		it.Out = out
	}
}

// evalModSplit runs the per-item middle of the pipeline: conjugate split,
// EvalMod on both halves, and recombination.
func (bs *Bootstrapper) evalModSplit(t *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	tc, err := bs.ev.Conjugate(t)
	if err != nil {
		return nil, err
	}
	re2, err := bs.ev.Add(t, tc)
	if err != nil {
		return nil, err
	}
	imDiff, err := bs.ev.Sub(tc, t)
	if err != nil {
		return nil, err
	}
	im2, err := bs.ev.MulByI(imDiff) // (conj−t)·i = 2·Im(t)
	if err != nil {
		return nil, err
	}
	reMod, err := bs.evalMod(re2)
	if err != nil {
		return nil, err
	}
	imMod, err := bs.evalMod(im2)
	if err != nil {
		return nil, err
	}
	imI, err := bs.ev.MulByI(imMod)
	if err != nil {
		return nil, err
	}
	a, b, err := alignLevels(bs.ev, reMod, imI)
	if err != nil {
		return nil, err
	}
	return bs.ev.Add(a, b)
}

// prune drops items whose Err is set (or whose entry in errs is set),
// keeping the item/ciphertext/evaluator slices aligned.
func prune(items []*BatchItem, cts []*ckks.Ciphertext, evs []*ckks.Evaluator, errs []error) ([]*BatchItem, []*ckks.Ciphertext, []*ckks.Evaluator) {
	outI := items[:0]
	outC := cts[:0]
	outE := evs[:0]
	for k, it := range items {
		if errs != nil && errs[k] != nil && it.Err == nil {
			it.Err = errs[k]
		}
		if it.Err != nil {
			continue
		}
		outI = append(outI, it)
		outC = append(outC, cts[k])
		outE = append(outE, evs[k])
	}
	return outI, outC, outE
}
