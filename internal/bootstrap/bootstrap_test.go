package bootstrap

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"cinnamon/internal/ckks"
)

func TestFitChebyshevAccuracy(t *testing.T) {
	f := func(x float64) float64 { return math.Cos(math.Pi * (x - 0.5) / 8) }
	c := FitChebyshev(f, -33, 33, 39)
	for i := 0; i <= 200; i++ {
		x := -33 + 66*float64(i)/200
		if e := math.Abs(c.EvalFloat(x) - f(x)); e > 1e-9 {
			t.Fatalf("x=%f: chebyshev error %g", x, e)
		}
	}
}

func TestChebyshevDoubleAngleReference(t *testing.T) {
	// The EvalMod construction in float: Chebyshev of the folded cosine +
	// r double angles must reproduce sin(π·u)/1 over the interval.
	K, r, deg := 16, 3, 39
	bound := float64(2*K + 1)
	c := FitChebyshev(func(u float64) float64 {
		return math.Cos(math.Pi * (u - 0.5) / math.Exp2(float64(r)))
	}, -bound, bound, deg)
	for i := 0; i <= 500; i++ {
		u := -bound + 2*bound*float64(i)/500
		v := c.EvalFloat(u)
		for k := 0; k < r; k++ {
			v = 2*v*v - 1
		}
		if e := math.Abs(v - math.Sin(math.Pi*u)); e > 1e-6 {
			t.Fatalf("u=%f: folded sine error %g", u, e)
		}
	}
}

func TestLinearTransformPlainApply(t *testing.T) {
	n := 8
	rng := rand.New(rand.NewSource(3))
	m := make([][]complex128, n)
	for i := range m {
		m[i] = make([]complex128, n)
		for j := range m[i] {
			m[i][j] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
		}
	}
	lt, err := NewLinearTransform(m)
	if err != nil {
		t.Fatal(err)
	}
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.Float64(), rng.Float64())
	}
	got := lt.Apply(v)
	for i := 0; i < n; i++ {
		var want complex128
		for j := 0; j < n; j++ {
			want += m[i][j] * v[j]
		}
		if cmplx.Abs(got[i]-want) > 1e-12 {
			t.Fatalf("row %d: diag apply %v != matmul %v", i, got[i], want)
		}
	}
}

func TestNewLinearTransformValidation(t *testing.T) {
	if _, err := NewLinearTransform(nil); err == nil {
		t.Fatal("expected empty matrix error")
	}
	if _, err := NewLinearTransform([][]complex128{{1, 2}, {3}}); err == nil {
		t.Fatal("expected non-square error")
	}
	bad := make([][]complex128, 3)
	for i := range bad {
		bad[i] = make([]complex128, 3)
	}
	if _, err := NewLinearTransform(bad); err == nil {
		t.Fatal("expected non-power-of-two error")
	}
}

func ltTestParams(t testing.TB) (*ckks.Parameters, *ckks.SecretKey) {
	t.Helper()
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     8,
		LogQ:     []int{55, 45, 45, 45},
		LogP:     []int{58, 58},
		LogScale: 45,
		Seed:     77,
	})
	if err != nil {
		t.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(params)
	sk, err := kg.GenSecretKey()
	if err != nil {
		t.Fatal(err)
	}
	return params, sk
}

func TestLinearTransformHomomorphic(t *testing.T) {
	params, sk := ltTestParams(t)
	n := 16
	rng := rand.New(rand.NewSource(5))
	m := make([][]complex128, n)
	for i := range m {
		m[i] = make([]complex128, n)
		for j := range m[i] {
			m[i][j] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
		}
	}
	lt, err := NewLinearTransform(m)
	if err != nil {
		t.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(params)
	rtks, err := kg.GenRotationKeySet(sk, lt.Rotations(), false)
	if err != nil {
		t.Fatal(err)
	}
	rlk, err := kg.GenRelinKey(sk)
	if err != nil {
		t.Fatal(err)
	}
	ev := ckks.NewEvaluator(params, rlk, rtks)
	enc := ckks.NewEncoder(params)
	pk, err := kg.GenPublicKey(sk)
	if err != nil {
		t.Fatal(err)
	}
	encr := ckks.NewEncryptor(params, pk)
	decr := ckks.NewDecryptor(params, sk)

	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
	}
	pt, err := enc.Encode(v, params.MaxLevel(), params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	ct, err := encr.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	out, err := lt.Evaluate(ev, enc, ct)
	if err != nil {
		t.Fatal(err)
	}
	out, err = ev.Rescale(out)
	if err != nil {
		t.Fatal(err)
	}
	ptOut, err := decr.Decrypt(out)
	if err != nil {
		t.Fatal(err)
	}
	got, err := enc.Decode(ptOut, n)
	if err != nil {
		t.Fatal(err)
	}
	want := lt.Apply(v)
	for i := range want {
		if e := cmplx.Abs(got[i] - want[i]); e > 1e-3 {
			t.Fatalf("slot %d: homomorphic LT error %g", i, e)
		}
	}
}

func TestEvalChebyshevHomomorphic(t *testing.T) {
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     9,
		LogQ:     []int{55, 45, 45, 45, 45, 45, 45, 45, 45},
		LogP:     []int{58, 58},
		LogScale: 45,
		Seed:     88,
	})
	if err != nil {
		t.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(params)
	sk, err := kg.GenSecretKey()
	if err != nil {
		t.Fatal(err)
	}
	rlk, err := kg.GenRelinKey(sk)
	if err != nil {
		t.Fatal(err)
	}
	pk, err := kg.GenPublicKey(sk)
	if err != nil {
		t.Fatal(err)
	}
	ev := ckks.NewEvaluator(params, rlk, nil)
	enc := ckks.NewEncoder(params)
	encr := ckks.NewEncryptor(params, pk)
	decr := ckks.NewDecryptor(params, sk)

	cheb := FitChebyshev(func(x float64) float64 { return math.Sin(x) / (1 + x*x) }, -4, 4, 15)
	slots := 32
	rng := rand.New(rand.NewSource(6))
	v := make([]complex128, slots)
	for i := range v {
		v[i] = complex(rng.Float64()*8-4, 0)
	}
	pt, err := enc.Encode(v, params.MaxLevel(), params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	ct, err := encr.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	out, err := EvalChebyshev(ev, ct, cheb)
	if err != nil {
		t.Fatal(err)
	}
	ptOut, err := decr.Decrypt(out)
	if err != nil {
		t.Fatal(err)
	}
	got, err := enc.Decode(ptOut, slots)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		want := cheb.EvalFloat(real(v[i]))
		if e := cmplx.Abs(got[i] - complex(want, 0)); e > 1e-3 {
			t.Fatalf("slot %d (x=%f): got %v, want %f (err %g)", i, real(v[i]), got[i], want, e)
		}
	}
}

func bootstrapParams(t testing.TB) (*ckks.Parameters, *ckks.SecretKey) {
	t.Helper()
	logQ := []int{60}
	for i := 0; i < 16; i++ {
		logQ = append(logQ, 45)
	}
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:          10,
		LogQ:          logQ,
		LogP:          []int{58, 58, 58, 58},
		LogScale:      45,
		Seed:          99,
		HammingWeight: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(params)
	sk, err := kg.GenSecretKey()
	if err != nil {
		t.Fatal(err)
	}
	return params, sk
}

func TestBootstrapEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("bootstrap end-to-end is expensive")
	}
	params, sk := bootstrapParams(t)
	bs, err := NewBootstrapper(params, sk, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(params)
	pk, err := kg.GenPublicKey(sk)
	if err != nil {
		t.Fatal(err)
	}
	encr := ckks.NewEncryptor(params, pk)
	decr := ckks.NewDecryptor(params, sk)
	enc := ckks.NewEncoder(params)

	slots := params.Slots()
	rng := rand.New(rand.NewSource(17))
	v := make([]complex128, slots)
	for i := range v {
		v[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	pt, err := enc.Encode(v, params.MaxLevel(), params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	ct, err := encr.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaust the budget: drop straight to level 0.
	low, err := bs.Evaluator().DropLevel(ct, 0)
	if err != nil {
		t.Fatal(err)
	}
	refreshed, err := bs.Bootstrap(low)
	if err != nil {
		t.Fatal(err)
	}
	if refreshed.Level() < 1 {
		t.Fatalf("bootstrap exited at level %d, want ≥ 1", refreshed.Level())
	}
	t.Logf("bootstrap: exit level %d of %d", refreshed.Level(), params.MaxLevel())
	ptOut, err := decr.Decrypt(refreshed)
	if err != nil {
		t.Fatal(err)
	}
	got, err := enc.Decode(ptOut, slots)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := range v {
		if e := cmplx.Abs(got[i] - v[i]); e > worst {
			worst = e
		}
	}
	t.Logf("bootstrap: worst slot error %g", worst)
	if worst > 5e-2 {
		t.Fatalf("bootstrap worst-slot error %g too large", worst)
	}
	// The refreshed ciphertext must be usable: square it once.
	sq, err := bs.Evaluator().MulRelin(refreshed, refreshed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bs.Evaluator().Rescale(sq); err != nil {
		t.Fatal(err)
	}
}

// TestBootstrapArcsineCorrection exercises the optional distortion
// correction: it must stay correct and consume two extra levels.
func TestBootstrapArcsineCorrection(t *testing.T) {
	if testing.Short() {
		t.Skip("bootstrap end-to-end is expensive")
	}
	params, sk := bootstrapParams(t)
	cfg := DefaultConfig()
	cfg.ArcsineCorrection = true
	bs, err := NewBootstrapper(params, sk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(params)
	pk, err := kg.GenPublicKey(sk)
	if err != nil {
		t.Fatal(err)
	}
	encr := ckks.NewEncryptor(params, pk)
	decr := ckks.NewDecryptor(params, sk)
	enc := ckks.NewEncoder(params)
	slots := params.Slots()
	rng := rand.New(rand.NewSource(29))
	v := make([]complex128, slots)
	for i := range v {
		v[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	pt, _ := enc.Encode(v, params.MaxLevel(), params.DefaultScale())
	ct, err := encr.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	low, err := bs.Evaluator().DropLevel(ct, 0)
	if err != nil {
		t.Fatal(err)
	}
	refreshed, err := bs.Bootstrap(low)
	if err != nil {
		t.Fatal(err)
	}
	ptOut, err := decr.Decrypt(refreshed)
	if err != nil {
		t.Fatal(err)
	}
	got, err := enc.Decode(ptOut, slots)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := range v {
		if e := cmplx.Abs(got[i] - v[i]); e > worst {
			worst = e
		}
	}
	t.Logf("arcsine bootstrap: exit level %d, worst error %g", refreshed.Level(), worst)
	if worst > 5e-2 {
		t.Fatalf("arcsine bootstrap error %g", worst)
	}
}

func TestBootstrapInputValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("bootstrap setup is expensive")
	}
	params, sk := bootstrapParams(t)
	bs, err := NewBootstrapper(params, sk, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(params)
	pk, err := kg.GenPublicKey(sk)
	if err != nil {
		t.Fatal(err)
	}
	encr := ckks.NewEncryptor(params, pk)
	enc := ckks.NewEncoder(params)
	pt, err := enc.Encode(make([]complex128, params.Slots()), params.MaxLevel(), params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	ct, err := encr.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bs.Bootstrap(ct); err == nil {
		t.Fatal("expected error for non-level-0 input")
	}
}

func TestNewBootstrapperRequiresSparseSecret(t *testing.T) {
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN: 8, LogQ: []int{55, 45}, LogP: []int{58}, LogScale: 45,
	})
	if err != nil {
		t.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(params)
	sk, err := kg.GenSecretKey()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBootstrapper(params, sk, DefaultConfig()); err == nil {
		t.Fatal("expected sparse-secret requirement error")
	}
}
