package bootstrap

import (
	"fmt"
	"math"

	"cinnamon/internal/ckks"
	"cinnamon/internal/ring"
)

// Config tunes the bootstrapping circuit.
type Config struct {
	// K bounds the modular-reduction interval: the EvalMod polynomial is
	// accurate for |I| ≤ K wraps. Larger K needs a sparser secret or a
	// higher degree.
	K int
	// DoubleAngle is the number of cosine double-angle foldings (r).
	DoubleAngle int
	// Degree of the Chebyshev approximation of the folded cosine.
	Degree int
	// HeadroomBits H sets the message-to-q0 ratio: the ciphertext is
	// scaled up to ≈ q0/2^H before ModRaise. Larger H reduces the sine
	// linearization distortion but costs message precision.
	HeadroomBits int
	// ArcsineCorrection applies θ ≈ s + s³/6 to each EvalMod output,
	// cancelling the cubic sine distortion sin(θ) ≈ θ − θ³/6 at the cost
	// of two more levels. Worth enabling when messages run close to the
	// headroom bound (large |m|·2^-H), where the distortion dominates.
	ArcsineCorrection bool
}

// DefaultConfig works with sparse secrets (Hamming weight ≲ 64).
func DefaultConfig() Config {
	return Config{K: 16, DoubleAngle: 3, Degree: 39, HeadroomBits: 4}
}

// Bootstrapper holds the precomputed matrices, polynomial approximation and
// keys for bootstrapping ciphertexts with a fixed slot count.
type Bootstrapper struct {
	params *ckks.Parameters
	enc    *ckks.Encoder
	ev     *ckks.Evaluator
	slots  int
	cfg    Config

	c2s, s2c *LinearTransform
	cheb     *Chebyshev
	scaleUp  uint64  // integer factor f bringing the scale to ≈ q0/2^H
	rho      float64 // (f·Δ)/q0, the exact scale-to-q0 ratio after ScaleUp
}

// NewBootstrapper precomputes the CoeffToSlot/SlotToCoeff transforms for
// full-slot (N/2) bootstrapping and generates the rotation, conjugation and
// relinearization keys it needs from sk.
func NewBootstrapper(params *ckks.Parameters, sk *ckks.SecretKey, cfg Config) (*Bootstrapper, error) {
	if params.HammingWeight() == 0 || params.HammingWeight() > 192 {
		return nil, fmt.Errorf("bootstrap: requires a sparse secret (HammingWeight in [1,192]), got %d", params.HammingWeight())
	}
	if cfg.K < 2 || cfg.Degree < 7 || cfg.DoubleAngle < 0 || cfg.HeadroomBits < 1 {
		return nil, fmt.Errorf("bootstrap: invalid config %+v", cfg)
	}
	bs := &Bootstrapper{
		params: params,
		enc:    ckks.NewEncoder(params),
		slots:  params.Slots(),
		cfg:    cfg,
	}
	n := bs.slots
	// Build the special-FFT matrix V (decode direction) and its inverse
	// numerically from the encoder's own transform, so the homomorphic DFT
	// matches the encoder exactly.
	V := make([][]complex128, n)
	Vinv := make([][]complex128, n)
	for i := range V {
		V[i] = make([]complex128, n)
		Vinv[i] = make([]complex128, n)
	}
	col := make([]complex128, n)
	for k := 0; k < n; k++ {
		for i := range col {
			col[i] = 0
		}
		col[k] = 1
		bs.enc.SpecialFFT(col)
		for i := 0; i < n; i++ {
			V[i][k] = col[i]
		}
		for i := range col {
			col[i] = 0
		}
		col[k] = 1
		bs.enc.SpecialFFTInv(col)
		for i := 0; i < n; i++ {
			Vinv[i][k] = col[i]
		}
	}
	q0 := float64(params.QBasis.Moduli[0])
	delta := params.DefaultScale()
	// Before ModRaise the ciphertext is scaled up by the integer
	// f = round(q0/(2^H·Δ)), bringing its scale to S0 = f·Δ ≈ q0/2^H.
	// Matrix entries then stay O(1) (no tiny factors that would be crushed
	// by plaintext quantization).
	bs.scaleUp = uint64(math.Round(q0 / (math.Exp2(float64(cfg.HeadroomBits)) * delta)))
	if bs.scaleUp < 2 {
		return nil, fmt.Errorf("bootstrap: q0/Δ ratio too small for %d headroom bits", cfg.HeadroomBits)
	}
	bs.rho = float64(bs.scaleUp) * delta / q0
	// SlotToCoeff folds the EvalMod output normalization: the sine output
	// is ≈ 2π·ρ·τ(v), so v = V·(1/(2πρ))·t'.
	s2cFac := complex(1/(2*math.Pi*bs.rho), 0)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			V[i][k] *= s2cFac
		}
	}
	var err error
	if bs.c2s, err = NewLinearTransform(Vinv); err != nil {
		return nil, err
	}
	if bs.s2c, err = NewLinearTransform(V); err != nil {
		return nil, err
	}
	// EvalMod polynomial: CoeffToSlot leaves slot values u = 2x/ρ where
	// x = coefficient/q0, so we fit h(u) = cos(π(ρ·u − 0.5)/2^r) over
	// u ∈ ±(2K+1)/ρ; r double-angle steps then give
	// cos(π·ρ·u − π/2) = sin(2π·x).
	bound := float64(2*cfg.K+1) / bs.rho
	r := cfg.DoubleAngle
	rho := bs.rho
	bs.cheb = FitChebyshev(func(u float64) float64 {
		return math.Cos(math.Pi * (rho*u - 0.5) / math.Exp2(float64(r)))
	}, -bound, bound, cfg.Degree)
	// Keys: all rotations both transforms need, plus conjugation and
	// relinearization.
	kg := ckks.NewKeyGenerator(params)
	rots := append(bs.c2s.Rotations(), bs.s2c.Rotations()...)
	rtks, err := kg.GenRotationKeySet(sk, rots, true)
	if err != nil {
		return nil, err
	}
	rlk, err := kg.GenRelinKey(sk)
	if err != nil {
		return nil, err
	}
	bs.ev = ckks.NewEvaluator(params, rlk, rtks)
	return bs, nil
}

// Evaluator exposes the internal evaluator (it holds every key the
// bootstrap circuit needs, which examples often reuse).
func (bs *Bootstrapper) Evaluator() *ckks.Evaluator { return bs.ev }

// MinLevelBudget returns a safe lower bound on the number of levels the
// bootstrap circuit consumes (C2S + EvalMod + S2C + normalization).
func (bs *Bootstrapper) MinLevelBudget() int {
	chebDepth := 1 // normalization
	for d := 1; d < bs.cfg.Degree+1; d <<= 1 {
		chebDepth++
	}
	budget := 1 + chebDepth + bs.cfg.DoubleAngle + 1 + 2
	if bs.cfg.ArcsineCorrection {
		budget += 2
	}
	return budget
}

// Bootstrap refreshes ct (which must be at level 0) back to a high level:
// the returned ciphertext encrypts the same slot values with
// params.MaxLevel() − consumed levels remaining.
func (bs *Bootstrapper) Bootstrap(ct *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	if ct.Level() != 0 {
		return nil, fmt.Errorf("bootstrap: input must be at level 0, got %d", ct.Level())
	}
	delta := bs.params.DefaultScale()
	if !closeTo(ct.Scale, delta) {
		return nil, fmt.Errorf("bootstrap: input scale %g must be the default scale %g", ct.Scale, delta)
	}
	// 1. ScaleUp to S0 = f·Δ ≈ q0/2^H (exact integer multiplication), then
	// ModRaise: reinterpret the level-0 residues as integers in the full
	// chain. Dec becomes S0·m + q0·I with small integer I.
	up := bs.ev.ScaleUp(ct, bs.scaleUp)
	raised, err := bs.modRaise(up)
	if err != nil {
		return nil, err
	}
	// 2. CoeffToSlot: slots now hold x_j = Δm_j/q0 + I_j (complex pairs).
	t, err := bs.c2s.Evaluate(bs.ev, bs.enc, raised)
	if err != nil {
		return nil, err
	}
	if t, err = bs.ev.Rescale(t); err != nil {
		return nil, err
	}
	// 3. Split into 2·Re(t) and 2·Im(t) with one conjugation.
	tc, err := bs.ev.Conjugate(t)
	if err != nil {
		return nil, err
	}
	re2, err := bs.ev.Add(t, tc)
	if err != nil {
		return nil, err
	}
	imDiff, err := bs.ev.Sub(tc, t)
	if err != nil {
		return nil, err
	}
	im2, err := bs.ev.MulByI(imDiff) // (conj−t)·i = 2·Im(t)
	if err != nil {
		return nil, err
	}
	// 4. EvalMod on both halves: u = 2x ∈ [−2K, 2K] → sin(2πx).
	reMod, err := bs.evalMod(re2)
	if err != nil {
		return nil, err
	}
	imMod, err := bs.evalMod(im2)
	if err != nil {
		return nil, err
	}
	// 5. Recombine t' = re' + i·im'.
	imI, err := bs.ev.MulByI(imMod)
	if err != nil {
		return nil, err
	}
	a, b, err := alignLevels(bs.ev, reMod, imI)
	if err != nil {
		return nil, err
	}
	comb, err := bs.ev.Add(a, b)
	if err != nil {
		return nil, err
	}
	// 6. SlotToCoeff restores the original slot values.
	out, err := bs.s2c.Evaluate(bs.ev, bs.enc, comb)
	if err != nil {
		return nil, err
	}
	if out, err = bs.ev.Rescale(out); err != nil {
		return nil, err
	}
	return out, nil
}

// closeTo reports approximate equality within 1e-6 relative tolerance.
func closeTo(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*math.Max(math.Abs(a), math.Abs(b))
}

// evalMod evaluates the Chebyshev cosine and applies the double-angle
// foldings c ← 2c² − 1 (r times), then optionally the arcsine correction.
func (bs *Bootstrapper) evalMod(ct *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	c, err := EvalChebyshev(bs.ev, ct, bs.cheb)
	if err != nil {
		return nil, err
	}
	for i := 0; i < bs.cfg.DoubleAngle; i++ {
		sq, err := bs.ev.MulRelin(c, c)
		if err != nil {
			return nil, err
		}
		if sq, err = bs.ev.Rescale(sq); err != nil {
			return nil, err
		}
		if sq, err = bs.ev.Add(sq, sq); err != nil {
			return nil, err
		}
		if c, err = bs.ev.AddConst(sq, -1); err != nil {
			return nil, err
		}
	}
	if !bs.cfg.ArcsineCorrection {
		return c, nil
	}
	// θ = asin(s) ≈ s + s³/6: evaluate s·(1 + s²/6) in two levels so the
	// downstream linear extraction sees θ = 2π·x instead of sin(2π·x).
	s2, err := bs.ev.MulRelin(c, c)
	if err != nil {
		return nil, err
	}
	if s2, err = bs.ev.Rescale(s2); err != nil {
		return nil, err
	}
	s2scaled, err := bs.ev.MulConstAtScale(s2, complex(1.0/6.0, 0), bs.ev.TopModulus(s2.Level()))
	if err != nil {
		return nil, err
	}
	if s2scaled, err = bs.ev.Rescale(s2scaled); err != nil {
		return nil, err
	}
	if s2scaled, err = bs.ev.AddConst(s2scaled, 1); err != nil {
		return nil, err
	}
	cAligned, s2a, err := alignLevels(bs.ev, c, s2scaled)
	if err != nil {
		return nil, err
	}
	out, err := bs.ev.MulRelin(cAligned, s2a)
	if err != nil {
		return nil, err
	}
	return bs.ev.Rescale(out)
}

// modRaise lifts a level-0 ciphertext to the full chain by re-expressing
// each centered coefficient residue in every chain modulus.
func (bs *Bootstrapper) modRaise(ct *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	r := bs.params.Ring
	topBasis, err := bs.params.BasisAtLevel(bs.params.MaxLevel())
	if err != nil {
		return nil, err
	}
	q0 := bs.params.QBasis.Moduli[0]
	raise := func(p *ring.Poly) (*ring.Poly, error) {
		cp := p.Copy()
		if err := r.INTT(cp); err != nil {
			return nil, err
		}
		out := r.NewPoly(topBasis)
		src := cp.Limbs[0]
		for i, c := range src {
			v := int64(c)
			if c > q0/2 {
				v = int64(c) - int64(q0)
			}
			for j, q := range topBasis.Moduli {
				if v >= 0 {
					out.Limbs[j][i] = uint64(v) % q
				} else if rem := uint64(-v) % q; rem == 0 {
					out.Limbs[j][i] = 0
				} else {
					out.Limbs[j][i] = q - rem
				}
			}
		}
		if err := r.NTT(out); err != nil {
			return nil, err
		}
		return out, nil
	}
	c0, err := raise(ct.C0)
	if err != nil {
		return nil, err
	}
	c1, err := raise(ct.C1)
	if err != nil {
		return nil, err
	}
	return &ckks.Ciphertext{C0: c0, C1: c1, Scale: ct.Scale}, nil
}
