package bootstrap

import (
	"fmt"
	"math"
	"sort"

	"cinnamon/internal/ckks"
	"cinnamon/internal/ring"
)

// Config tunes the bootstrapping circuit.
type Config struct {
	// K bounds the modular-reduction interval: the EvalMod polynomial is
	// accurate for |I| ≤ K wraps. Larger K needs a sparser secret or a
	// higher degree.
	K int
	// DoubleAngle is the number of cosine double-angle foldings (r).
	DoubleAngle int
	// Degree of the Chebyshev approximation of the folded cosine.
	Degree int
	// HeadroomBits H sets the message-to-q0 ratio: the ciphertext is
	// scaled up to ≈ q0/2^H before ModRaise. Larger H reduces the sine
	// linearization distortion but costs message precision.
	HeadroomBits int
	// ArcsineCorrection applies θ ≈ s + s³/6 to each EvalMod output,
	// cancelling the cubic sine distortion sin(θ) ≈ θ − θ³/6 at the cost
	// of three more levels. Worth enabling when messages run close to the
	// headroom bound (large |m|·2^-H), where the distortion dominates.
	ArcsineCorrection bool
}

// DefaultConfig works with sparse secrets (Hamming weight ≲ 64).
func DefaultConfig() Config {
	return Config{K: 16, DoubleAngle: 3, Degree: 39, HeadroomBits: 4}
}

// Precomp holds everything about the bootstrap circuit that does not depend
// on key material: the CoeffToSlot/SlotToCoeff transforms, the EvalMod
// Chebyshev approximation and the scale bookkeeping. One Precomp is shared
// by every tenant's Bootstrapper (the transforms dominate setup cost and
// memory; keys are the only per-tenant part).
type Precomp struct {
	params *ckks.Parameters
	enc    *ckks.Encoder
	slots  int
	cfg    Config

	c2s, s2c *LinearTransform
	cheb     *Chebyshev
	scaleUp  uint64  // integer factor f bringing the scale to ≈ q0/2^H
	rho      float64 // (f·Δ)/q0, the exact scale-to-q0 ratio after ScaleUp
}

// Bootstrapper binds a Precomp to one key set (relinearization + the
// transform rotations + conjugation).
type Bootstrapper struct {
	pre *Precomp
	ev  *ckks.Evaluator
}

// NewPrecomp builds the key-independent part of the bootstrap circuit for
// full-slot (N/2) bootstrapping.
func NewPrecomp(params *ckks.Parameters, cfg Config) (*Precomp, error) {
	if params.HammingWeight() == 0 || params.HammingWeight() > 192 {
		return nil, fmt.Errorf("bootstrap: requires a sparse secret (HammingWeight in [1,192]), got %d", params.HammingWeight())
	}
	if cfg.K < 2 || cfg.Degree < 7 || cfg.DoubleAngle < 0 || cfg.HeadroomBits < 1 {
		return nil, fmt.Errorf("bootstrap: invalid config %+v", cfg)
	}
	pre := &Precomp{
		params: params,
		enc:    ckks.NewEncoder(params),
		slots:  params.Slots(),
		cfg:    cfg,
	}
	n := pre.slots
	// Build the special-FFT matrix V (decode direction) and its inverse
	// numerically from the encoder's own transform, so the homomorphic DFT
	// matches the encoder exactly.
	V := make([][]complex128, n)
	Vinv := make([][]complex128, n)
	for i := range V {
		V[i] = make([]complex128, n)
		Vinv[i] = make([]complex128, n)
	}
	col := make([]complex128, n)
	for k := 0; k < n; k++ {
		for i := range col {
			col[i] = 0
		}
		col[k] = 1
		pre.enc.SpecialFFT(col)
		for i := 0; i < n; i++ {
			V[i][k] = col[i]
		}
		for i := range col {
			col[i] = 0
		}
		col[k] = 1
		pre.enc.SpecialFFTInv(col)
		for i := 0; i < n; i++ {
			Vinv[i][k] = col[i]
		}
	}
	q0 := float64(params.QBasis.Moduli[0])
	delta := params.DefaultScale()
	// Before ModRaise the ciphertext is scaled up by the integer
	// f = round(q0/(2^H·Δ)), bringing its scale to S0 = f·Δ ≈ q0/2^H.
	// Matrix entries then stay O(1) (no tiny factors that would be crushed
	// by plaintext quantization).
	pre.scaleUp = uint64(math.Round(q0 / (math.Exp2(float64(cfg.HeadroomBits)) * delta)))
	if pre.scaleUp < 2 {
		return nil, fmt.Errorf("bootstrap: q0/Δ ratio too small for %d headroom bits", cfg.HeadroomBits)
	}
	pre.rho = float64(pre.scaleUp) * delta / q0
	// SlotToCoeff folds the EvalMod output normalization: the sine output
	// is ≈ 2π·ρ·τ(v), so v = V·(1/(2πρ))·t'.
	s2cFac := complex(1/(2*math.Pi*pre.rho), 0)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			V[i][k] *= s2cFac
		}
	}
	var err error
	if pre.c2s, err = NewLinearTransform(Vinv); err != nil {
		return nil, err
	}
	if pre.s2c, err = NewLinearTransform(V); err != nil {
		return nil, err
	}
	// EvalMod polynomial: CoeffToSlot leaves slot values u = 2x/ρ where
	// x = coefficient/q0, so we fit h(u) = cos(π(ρ·u − 0.5)/2^r) over
	// u ∈ ±(2K+1)/ρ; r double-angle steps then give
	// cos(π·ρ·u − π/2) = sin(2π·x).
	bound := float64(2*cfg.K+1) / pre.rho
	r := cfg.DoubleAngle
	rho := pre.rho
	pre.cheb = FitChebyshev(func(u float64) float64 {
		return math.Cos(math.Pi * (rho*u - 0.5) / math.Exp2(float64(r)))
	}, -bound, bound, cfg.Degree)
	return pre, nil
}

// Config returns the circuit configuration.
func (pre *Precomp) Config() Config { return pre.cfg }

// Params returns the parameters the circuit was built for.
func (pre *Precomp) Params() *ckks.Parameters { return pre.params }

// Rotations returns the deduplicated, sorted slot offsets whose rotation
// keys the bootstrap circuit needs (union of both transforms).
func (pre *Precomp) Rotations() []int {
	set := map[int]bool{}
	for _, k := range pre.c2s.Rotations() {
		set[k] = true
	}
	for _, k := range pre.s2c.Rotations() {
		set[k] = true
	}
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Consumed returns the exact number of levels one bootstrap burns below
// MaxLevel: CoeffToSlot rescale (1), Chebyshev normalization (1), the
// Paterson–Stockmeyer tree (⌈log2(Degree+1)⌉), the double-angle foldings
// (r), the SlotToCoeff rescale (1), plus three for the optional arcsine
// correction. The end-to-end test pins this against evaluator reality.
func (pre *Precomp) Consumed() int {
	chebDepth := 0
	for d := 1; d < pre.cfg.Degree+1; d <<= 1 {
		chebDepth++
	}
	consumed := 3 + chebDepth + pre.cfg.DoubleAngle
	if pre.cfg.ArcsineCorrection {
		consumed += 3
	}
	return consumed
}

// ExitLevel returns the level a freshly bootstrapped ciphertext lands on.
func (pre *Precomp) ExitLevel() int { return pre.params.MaxLevel() - pre.Consumed() }

// NewBootstrapperFromKeys binds a shared Precomp to one tenant's keys.
// rtks must contain keys for every offset in pre.Rotations() plus the
// conjugation key; rlk is the relinearization key.
func NewBootstrapperFromKeys(pre *Precomp, rlk *ckks.EvalKey, rtks *ckks.RotationKeySet) (*Bootstrapper, error) {
	if pre == nil {
		return nil, fmt.Errorf("bootstrap: nil precomp")
	}
	if rlk == nil {
		return nil, fmt.Errorf("bootstrap: nil relinearization key")
	}
	return &Bootstrapper{pre: pre, ev: ckks.NewEvaluator(pre.params, rlk, rtks)}, nil
}

// NewBootstrapper precomputes the CoeffToSlot/SlotToCoeff transforms for
// full-slot (N/2) bootstrapping and generates the rotation, conjugation and
// relinearization keys it needs from sk.
func NewBootstrapper(params *ckks.Parameters, sk *ckks.SecretKey, cfg Config) (*Bootstrapper, error) {
	pre, err := NewPrecomp(params, cfg)
	if err != nil {
		return nil, err
	}
	kg := ckks.NewKeyGenerator(params)
	rtks, err := kg.GenRotationKeySet(sk, pre.Rotations(), true)
	if err != nil {
		return nil, err
	}
	rlk, err := kg.GenRelinKey(sk)
	if err != nil {
		return nil, err
	}
	return NewBootstrapperFromKeys(pre, rlk, rtks)
}

// Evaluator exposes the internal evaluator (it holds every key the
// bootstrap circuit needs, which examples often reuse).
func (bs *Bootstrapper) Evaluator() *ckks.Evaluator { return bs.ev }

// Precomp exposes the shared key-independent circuit.
func (bs *Bootstrapper) Precomp() *Precomp { return bs.pre }

// MinLevelBudget returns a safe lower bound on the number of levels the
// bootstrap circuit consumes (C2S + EvalMod + S2C + normalization).
func (bs *Bootstrapper) MinLevelBudget() int {
	chebDepth := 1 // normalization
	for d := 1; d < bs.pre.cfg.Degree+1; d <<= 1 {
		chebDepth++
	}
	budget := 1 + chebDepth + bs.pre.cfg.DoubleAngle + 1 + 2
	if bs.pre.cfg.ArcsineCorrection {
		budget += 2
	}
	return budget
}

// Bootstrap refreshes ct (which must be at level 0) back to a high level:
// the returned ciphertext encrypts the same slot values with
// pre.ExitLevel() levels remaining. It is exactly a batch of one, so its
// results are bit-identical to the batched path.
func (bs *Bootstrapper) Bootstrap(ct *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	item := BatchItem{BS: bs, CT: ct}
	BootstrapBatch([]*BatchItem{&item})
	return item.Out, item.Err
}

// validate checks the bootstrap input contract: level 0, default scale.
func (bs *Bootstrapper) validate(ct *ckks.Ciphertext) error {
	if ct.Level() != 0 {
		return fmt.Errorf("bootstrap: input must be at level 0, got %d", ct.Level())
	}
	delta := bs.pre.params.DefaultScale()
	if !closeTo(ct.Scale, delta) {
		return fmt.Errorf("bootstrap: input scale %g must be the default scale %g", ct.Scale, delta)
	}
	return nil
}

// closeTo reports approximate equality within 1e-6 relative tolerance.
func closeTo(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*math.Max(math.Abs(a), math.Abs(b))
}

// evalMod evaluates the Chebyshev cosine and applies the double-angle
// foldings c ← 2c² − 1 (r times), then optionally the arcsine correction.
func (bs *Bootstrapper) evalMod(ct *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	c, err := EvalChebyshev(bs.ev, ct, bs.pre.cheb)
	if err != nil {
		return nil, err
	}
	for i := 0; i < bs.pre.cfg.DoubleAngle; i++ {
		sq, err := bs.ev.MulRelin(c, c)
		if err != nil {
			return nil, err
		}
		if sq, err = bs.ev.Rescale(sq); err != nil {
			return nil, err
		}
		if sq, err = bs.ev.Add(sq, sq); err != nil {
			return nil, err
		}
		if c, err = bs.ev.AddConst(sq, -1); err != nil {
			return nil, err
		}
	}
	if !bs.pre.cfg.ArcsineCorrection {
		return c, nil
	}
	// θ = asin(s) ≈ s + s³/6: evaluate s·(1 + s²/6) so the downstream
	// linear extraction sees θ = 2π·x instead of sin(2π·x).
	s2, err := bs.ev.MulRelin(c, c)
	if err != nil {
		return nil, err
	}
	if s2, err = bs.ev.Rescale(s2); err != nil {
		return nil, err
	}
	s2scaled, err := bs.ev.MulConstAtScale(s2, complex(1.0/6.0, 0), bs.ev.TopModulus(s2.Level()))
	if err != nil {
		return nil, err
	}
	if s2scaled, err = bs.ev.Rescale(s2scaled); err != nil {
		return nil, err
	}
	if s2scaled, err = bs.ev.AddConst(s2scaled, 1); err != nil {
		return nil, err
	}
	cAligned, s2a, err := alignLevels(bs.ev, c, s2scaled)
	if err != nil {
		return nil, err
	}
	out, err := bs.ev.MulRelin(cAligned, s2a)
	if err != nil {
		return nil, err
	}
	return bs.ev.Rescale(out)
}

// modRaise lifts a level-0 ciphertext to the full chain by re-expressing
// each centered coefficient residue in every chain modulus.
func (bs *Bootstrapper) modRaise(ct *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	r := bs.pre.params.Ring
	topBasis, err := bs.pre.params.BasisAtLevel(bs.pre.params.MaxLevel())
	if err != nil {
		return nil, err
	}
	q0 := bs.pre.params.QBasis.Moduli[0]
	raise := func(p *ring.Poly) (*ring.Poly, error) {
		cp := p.Copy()
		if err := r.INTT(cp); err != nil {
			return nil, err
		}
		out := r.NewPoly(topBasis)
		src := cp.Limbs[0]
		for i, c := range src {
			v := int64(c)
			if c > q0/2 {
				v = int64(c) - int64(q0)
			}
			for j, q := range topBasis.Moduli {
				if v >= 0 {
					out.Limbs[j][i] = uint64(v) % q
				} else if rem := uint64(-v) % q; rem == 0 {
					out.Limbs[j][i] = 0
				} else {
					out.Limbs[j][i] = q - rem
				}
			}
		}
		if err := r.NTT(out); err != nil {
			return nil, err
		}
		return out, nil
	}
	c0, err := raise(ct.C0)
	if err != nil {
		return nil, err
	}
	c1, err := raise(ct.C1)
	if err != nil {
		return nil, err
	}
	return &ckks.Ciphertext{C0: c0, C1: c1, Scale: ct.Scale}, nil
}
