package bootstrap

import (
	"math"
	"math/big"
	"math/cmplx"
	"math/rand"
	"testing"

	"cinnamon/internal/ckks"
)

// TestBootstrapStages decrypts after each pipeline stage and compares with
// the expected plaintext-side computation. It is a diagnostic harness as
// much as a regression test: a failure pinpoints the first broken stage.
func TestBootstrapStages(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	params, sk := bootstrapParams(t)
	bs, err := NewBootstrapper(params, sk, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(params)
	pk, _ := kg.GenPublicKey(sk)
	encr := ckks.NewEncryptor(params, pk)
	decr := ckks.NewDecryptor(params, sk)
	enc := ckks.NewEncoder(params)
	slots := params.Slots()
	rng := rand.New(rand.NewSource(17))
	v := make([]complex128, slots)
	for i := range v {
		v[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	pt, _ := enc.Encode(v, params.MaxLevel(), params.DefaultScale())
	ct, _ := encr.Encrypt(pt)
	low, _ := bs.Evaluator().DropLevel(ct, 0)

	q0f := float64(params.QBasis.Moduli[0])
	_ = params.DefaultScale()
	nh := params.N() / 2

	// Stage 1: ModRaise. Decrypt, read raw coefficients, and verify they
	// are Δ·τ(v) + q0·I with small integer I.
	up := bs.ev.ScaleUp(low, bs.pre.scaleUp)
	raised, err := bs.modRaise(up)
	if err != nil {
		t.Fatal(err)
	}
	ptR, _ := decr.Decrypt(raised)
	polyR := ptR.Poly.Copy()
	if err := params.Ring.INTT(polyR); err != nil {
		t.Fatal(err)
	}
	tau := append([]complex128(nil), v...)
	enc.SpecialFFTInv(tau)
	coeff := func(j int) float64 {
		c, err := polyR.CoeffToCentered(j)
		if err != nil {
			t.Fatal(err)
		}
		f, _ := new(big.Float).SetInt(c).Float64()
		return f
	}
	// x values the EvalMod stage should see.
	xWant := make([]complex128, slots)
	maxI, maxFrac := 0.0, 0.0
	for j := 0; j < slots; j++ {
		re := coeff(j) / q0f
		im := coeff(j+nh) / q0f
		xWant[j] = complex(re, im)
		for _, u := range []float64{re, im} {
			i0 := math.Round(u)
			if math.Abs(i0) > maxI {
				maxI = math.Abs(i0)
			}
			if f := math.Abs(u - i0); f > maxFrac {
				maxFrac = f
			}
		}
	}
	t.Logf("stage1 modraise: max |I| = %.1f (K=%d), max |frac| = %g", maxI, bs.pre.cfg.K, maxFrac)
	if maxI > float64(bs.pre.cfg.K) {
		t.Fatalf("stage1: wrap count %f exceeds K", maxI)
	}
	// Fractional part should be Δ·τ(v)/q0-sized.
	for j := 0; j < slots; j++ {
		fr := real(xWant[j]) - math.Round(real(xWant[j]))
		want := real(tau[j]) * bs.pre.rho
		if math.Abs(fr-want) > 1e-3 {
			t.Fatalf("stage1: coeff %d frac %g, want %g", j, fr, want)
		}
	}

	// Stage 2: CoeffToSlot. Slots must now hold xWant.
	ts, err := bs.pre.c2s.Evaluate(bs.ev, bs.pre.enc, raised)
	if err != nil {
		t.Fatal(err)
	}
	if ts, err = bs.ev.Rescale(ts); err != nil {
		t.Fatal(err)
	}
	ptT, _ := decr.Decrypt(ts)
	gotT, err := enc.Decode(ptT, slots)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for j := range gotT {
		// CoeffToSlot leaves u = x/ρ in the slots.
		if e := cmplx.Abs(gotT[j]*complex(bs.pre.rho, 0) - xWant[j]); e > worst {
			worst = e
		}
	}
	t.Logf("stage2 c2s: worst slot error %g", worst)
	if worst > 1e-2 {
		t.Fatalf("stage2: CoeffToSlot error %g", worst)
	}

	// Stage 3: conjugation split + EvalMod on the real half.
	tc, err := bs.ev.Conjugate(ts)
	if err != nil {
		t.Fatal(err)
	}
	re2, err := bs.ev.Add(ts, tc)
	if err != nil {
		t.Fatal(err)
	}
	reMod, err := bs.evalMod(re2)
	if err != nil {
		t.Fatal(err)
	}
	ptM, _ := decr.Decrypt(reMod)
	gotM, err := enc.Decode(ptM, slots)
	if err != nil {
		t.Fatal(err)
	}
	worst = 0.0
	for j := range gotM {
		want := math.Sin(2 * math.Pi * real(xWant[j]))
		if e := cmplx.Abs(gotM[j] - complex(want, 0)); e > worst {
			worst = e
		}
	}
	t.Logf("stage3 evalmod: worst error %g (level %d)", worst, reMod.Level())
	if worst > 1e-2 {
		t.Fatalf("stage3: EvalMod error %g", worst)
	}

	// Stage 4: imaginary half + recombination.
	imDiff, err := bs.ev.Sub(tc, ts)
	if err != nil {
		t.Fatal(err)
	}
	im2, err := bs.ev.MulByI(imDiff)
	if err != nil {
		t.Fatal(err)
	}
	imMod, err := bs.evalMod(im2)
	if err != nil {
		t.Fatal(err)
	}
	imI, err := bs.ev.MulByI(imMod)
	if err != nil {
		t.Fatal(err)
	}
	a, b, err := alignLevels(bs.ev, reMod, imI)
	if err != nil {
		t.Fatal(err)
	}
	comb, err := bs.ev.Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ptC, _ := decr.Decrypt(comb)
	gotC, err := enc.Decode(ptC, slots)
	if err != nil {
		t.Fatal(err)
	}
	worst = 0.0
	for j := range gotC {
		want := complex(math.Sin(2*math.Pi*real(xWant[j])), math.Sin(2*math.Pi*imag(xWant[j])))
		if e := cmplx.Abs(gotC[j] - want); e > worst {
			worst = e
		}
	}
	t.Logf("stage4 recombine: worst error %g (level %d)", worst, comb.Level())
	if worst > 1e-2 {
		t.Fatalf("stage4: recombination error %g", worst)
	}

	// Stage 5: SlotToCoeff must reproduce the original v.
	out, err := bs.pre.s2c.Evaluate(bs.ev, bs.pre.enc, comb)
	if err != nil {
		t.Fatal(err)
	}
	if out, err = bs.ev.Rescale(out); err != nil {
		t.Fatal(err)
	}
	ptO, _ := decr.Decrypt(out)
	gotO, err := enc.Decode(ptO, slots)
	if err != nil {
		t.Fatal(err)
	}
	worst = 0.0
	for j := range gotO {
		if e := cmplx.Abs(gotO[j] - v[j]); e > worst {
			worst = e
		}
	}
	t.Logf("stage5 s2c: worst error %g (level %d)", worst, out.Level())
	if worst > 5e-2 {
		t.Fatalf("stage5: SlotToCoeff error %g", worst)
	}
}
