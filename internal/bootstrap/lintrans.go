// Package bootstrap implements CKKS bootstrapping (paper §2
// "Bootstrapping"): raising an exhausted ciphertext back to a high level by
// homomorphically evaluating the modular reduction. The pipeline is the
// standard one — ModRaise, CoeffToSlot (a homomorphic DFT), EvalMod (a
// Chebyshev sine approximation with double-angle folding), SlotToCoeff —
// and is dominated by the rotations/keyswitches the Cinnamon paper
// accelerates.
package bootstrap

import (
	"fmt"
	"sync"

	"cinnamon/internal/ckks"
	"cinnamon/internal/parallel"
)

// LinearTransform is a slot-space linear map represented by its nonzero
// diagonals, evaluated homomorphically with the baby-step/giant-step (BSGS)
// pattern: out = Σ_i rot_{i·n1}( Σ_j ptRot_{i,j} ⊙ rot_j(ct) ).
//
// This is exactly the "multiple rotations on a single ciphertext" pattern
// the paper's keyswitch pass batches (§4.3.1).
type LinearTransform struct {
	Slots int
	Diags map[int][]complex128
	N1    int // baby-step width (power of two)

	// Encoded diagonals are deterministic per (level, d), so they are
	// computed once and reused across every evaluation — single or batched,
	// any tenant. The mutex also serializes the (stateless but not
	// concurrency-safe) encoder during warm-up.
	ptMu    sync.Mutex
	ptCache map[uint64]*ckks.Plaintext
}

// NewLinearTransform builds the diagonal representation of the dense
// matrix m (out = m · in over slot vectors).
func NewLinearTransform(m [][]complex128) (*LinearTransform, error) {
	n := len(m)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("bootstrap: matrix dimension %d must be a power of two", n)
	}
	for i := range m {
		if len(m[i]) != n {
			return nil, fmt.Errorf("bootstrap: matrix is not square")
		}
	}
	lt := &LinearTransform{Slots: n, Diags: map[int][]complex128{}, ptCache: map[uint64]*ckks.Plaintext{}}
	for d := 0; d < n; d++ {
		diag := make([]complex128, n)
		zero := true
		for j := 0; j < n; j++ {
			diag[j] = m[j][(j+d)%n]
			if diag[j] != 0 {
				zero = false
			}
		}
		if !zero {
			lt.Diags[d] = diag
		}
	}
	n1 := 1
	for n1*n1 < len(lt.Diags) {
		n1 <<= 1
	}
	if n1 > n {
		n1 = n
	}
	lt.N1 = n1
	return lt, nil
}

// Rotations returns the slot offsets whose rotation keys Evaluate needs.
func (lt *LinearTransform) Rotations() []int {
	set := map[int]bool{}
	for d := range lt.Diags {
		i, j := d/lt.N1, d%lt.N1
		if j != 0 {
			set[j] = true
		}
		if i != 0 {
			set[i*lt.N1] = true
		}
	}
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	return out
}

// diagPlaintext returns the encoded diagonal d at the given level,
// pre-rotated by −(d/N1)·N1 so the giant-step rotation realigns it. The
// encode scale is exactly the top modulus at that level, so the caller's
// rescale preserves ct.Scale. Encodes are deterministic, so a cache hit is
// bit-identical to a fresh encode.
func (lt *LinearTransform) diagPlaintext(enc *ckks.Encoder, level int, d int, scale float64) (*ckks.Plaintext, error) {
	key := uint64(level)<<32 | uint64(uint32(d))
	lt.ptMu.Lock()
	defer lt.ptMu.Unlock()
	if pt, ok := lt.ptCache[key]; ok {
		return pt, nil
	}
	diag := lt.Diags[d]
	shift := (d / lt.N1) * lt.N1
	w := make([]complex128, lt.Slots)
	for k := range w {
		w[k] = diag[((k-shift)%lt.Slots+lt.Slots)%lt.Slots]
	}
	pt, err := enc.Encode(w, level, scale)
	if err != nil {
		return nil, err
	}
	lt.ptCache[key] = pt
	return pt, nil
}

// babySteps returns the distinct nonzero baby-step offsets the transform's
// diagonals need, in stable (ascending d) discovery order is not required —
// hoisted rotations are order-independent.
func (lt *LinearTransform) babySteps() []int {
	var steps []int
	seen := map[int]bool{}
	for d := range lt.Diags {
		if j := d % lt.N1; j != 0 && !seen[j] {
			seen[j] = true
			steps = append(steps, j)
		}
	}
	return steps
}

// accumulate runs the giant-step loop for one ciphertext given its hoisted
// baby rotations. Both the single and batched entry points funnel through
// this, so per-ciphertext operation order — and therefore the result bits —
// cannot differ between them.
func (lt *LinearTransform) accumulate(ev *ckks.Evaluator, enc *ckks.Encoder, ct *ckks.Ciphertext, rotCache map[int]*ckks.Ciphertext, level int, scale float64) (*ckks.Ciphertext, error) {
	rotated := func(j int) (*ckks.Ciphertext, error) {
		if r, ok := rotCache[j]; ok {
			return r, nil
		}
		r, err := ev.Rotate(ct, j)
		if err != nil {
			return nil, err
		}
		rotCache[j] = r
		return r, nil
	}
	var acc *ckks.Ciphertext
	for i := 0; i*lt.N1 < lt.Slots; i++ {
		var inner *ckks.Ciphertext
		for j := 0; j < lt.N1; j++ {
			if _, ok := lt.Diags[i*lt.N1+j]; !ok {
				continue
			}
			pt, err := lt.diagPlaintext(enc, level, i*lt.N1+j, scale)
			if err != nil {
				return nil, err
			}
			rj, err := rotated(j)
			if err != nil {
				return nil, err
			}
			term, err := ev.MulPlain(rj, pt)
			if err != nil {
				return nil, err
			}
			if inner == nil {
				inner = term
			} else if inner, err = ev.Add(inner, term); err != nil {
				return nil, err
			}
		}
		if inner == nil {
			continue
		}
		if i != 0 {
			var err error
			if inner, err = ev.Rotate(inner, i*lt.N1); err != nil {
				return nil, err
			}
		}
		if acc == nil {
			acc = inner
		} else {
			var err error
			if acc, err = ev.Add(acc, inner); err != nil {
				return nil, err
			}
		}
	}
	if acc == nil {
		return nil, fmt.Errorf("bootstrap: linear transform has no nonzero diagonal")
	}
	return acc, nil
}

// Evaluate applies the transform to ct. The output scale is
// ct.Scale · Δ; the caller rescales. enc must share the evaluator's
// parameters.
func (lt *LinearTransform) Evaluate(ev *ckks.Evaluator, enc *ckks.Encoder, ct *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	outs, errs := lt.EvaluateBatch([]*ckks.Evaluator{ev}, enc, []*ckks.Ciphertext{ct})
	if errs[0] != nil {
		return nil, errs[0]
	}
	return outs[0], nil
}

// EvaluateBatch applies the transform to several ciphertexts — possibly
// from different tenants, hence the per-item evaluators — sharing one pass
// of setup: diagonal plaintexts are encoded once, and ALL baby-step
// rotations across every item are hoisted into a single fork-join batch
// (the paper's batched keyswitch collective, amortized across requests).
// All inputs must sit at the same level. Failures are per-item.
func (lt *LinearTransform) EvaluateBatch(evs []*ckks.Evaluator, enc *ckks.Encoder, cts []*ckks.Ciphertext) ([]*ckks.Ciphertext, []error) {
	n := len(cts)
	outs := make([]*ckks.Ciphertext, n)
	errs := make([]error, n)
	if n == 0 {
		return outs, errs
	}
	if len(evs) != n {
		for i := range errs {
			errs[i] = fmt.Errorf("bootstrap: %d evaluators for %d ciphertexts", len(evs), n)
		}
		return outs, errs
	}
	level := cts[0].Level()
	for i, ct := range cts {
		if ct.Level() != level {
			errs[i] = fmt.Errorf("bootstrap: batch level mismatch: item %d at level %d, batch at %d", i, ct.Level(), level)
		}
	}
	// Encode diagonals at exactly the modulus the following rescale will
	// consume, so the caller's rescale preserves ct.Scale exactly.
	scale := evs[0].TopModulus(level)
	steps := lt.babySteps()
	// Hoist every (item, baby-step) rotation into one flat batch: the
	// rotations are mutually independent keyswitches and run concurrently
	// on the limb worker pool.
	caches := make([]map[int]*ckks.Ciphertext, n)
	for i := range caches {
		caches[i] = map[int]*ckks.Ciphertext{0: cts[i]}
	}
	if len(steps) > 0 {
		type job struct{ item, step int }
		var jobs []job
		for i := 0; i < n; i++ {
			if errs[i] != nil {
				continue
			}
			for _, j := range steps {
				jobs = append(jobs, job{i, j})
			}
		}
		rots := make([]*ckks.Ciphertext, len(jobs))
		rerrs := make([]error, len(jobs))
		parallel.For(len(jobs), func(k int) {
			rots[k], rerrs[k] = evs[jobs[k].item].Rotate(cts[jobs[k].item], jobs[k].step)
		})
		for k, jb := range jobs {
			if rerrs[k] != nil {
				if errs[jb.item] == nil {
					errs[jb.item] = rerrs[k]
				}
				continue
			}
			caches[jb.item][jb.step] = rots[k]
		}
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			continue
		}
		outs[i], errs[i] = lt.accumulate(evs[i], enc, cts[i], caches[i], level, scale)
	}
	return outs, errs
}

// Apply evaluates the transform on a plaintext vector (reference path for
// tests).
func (lt *LinearTransform) Apply(v []complex128) []complex128 {
	out := make([]complex128, lt.Slots)
	for d, diag := range lt.Diags {
		for j := 0; j < lt.Slots; j++ {
			out[j] += diag[j] * v[(j+d)%lt.Slots]
		}
	}
	return out
}
