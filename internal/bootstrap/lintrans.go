// Package bootstrap implements CKKS bootstrapping (paper §2
// "Bootstrapping"): raising an exhausted ciphertext back to a high level by
// homomorphically evaluating the modular reduction. The pipeline is the
// standard one — ModRaise, CoeffToSlot (a homomorphic DFT), EvalMod (a
// Chebyshev sine approximation with double-angle folding), SlotToCoeff —
// and is dominated by the rotations/keyswitches the Cinnamon paper
// accelerates.
package bootstrap

import (
	"fmt"

	"cinnamon/internal/ckks"
	"cinnamon/internal/parallel"
)

// LinearTransform is a slot-space linear map represented by its nonzero
// diagonals, evaluated homomorphically with the baby-step/giant-step (BSGS)
// pattern: out = Σ_i rot_{i·n1}( Σ_j ptRot_{i,j} ⊙ rot_j(ct) ).
//
// This is exactly the "multiple rotations on a single ciphertext" pattern
// the paper's keyswitch pass batches (§4.3.1).
type LinearTransform struct {
	Slots int
	Diags map[int][]complex128
	N1    int // baby-step width (power of two)
}

// NewLinearTransform builds the diagonal representation of the dense
// matrix m (out = m · in over slot vectors).
func NewLinearTransform(m [][]complex128) (*LinearTransform, error) {
	n := len(m)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("bootstrap: matrix dimension %d must be a power of two", n)
	}
	for i := range m {
		if len(m[i]) != n {
			return nil, fmt.Errorf("bootstrap: matrix is not square")
		}
	}
	lt := &LinearTransform{Slots: n, Diags: map[int][]complex128{}}
	for d := 0; d < n; d++ {
		diag := make([]complex128, n)
		zero := true
		for j := 0; j < n; j++ {
			diag[j] = m[j][(j+d)%n]
			if diag[j] != 0 {
				zero = false
			}
		}
		if !zero {
			lt.Diags[d] = diag
		}
	}
	n1 := 1
	for n1*n1 < len(lt.Diags) {
		n1 <<= 1
	}
	if n1 > n {
		n1 = n
	}
	lt.N1 = n1
	return lt, nil
}

// Rotations returns the slot offsets whose rotation keys Evaluate needs.
func (lt *LinearTransform) Rotations() []int {
	set := map[int]bool{}
	for d := range lt.Diags {
		i, j := d/lt.N1, d%lt.N1
		if j != 0 {
			set[j] = true
		}
		if i != 0 {
			set[i*lt.N1] = true
		}
	}
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	return out
}

// Evaluate applies the transform to ct. The output scale is
// ct.Scale · Δ; the caller rescales. enc must share the evaluator's
// parameters.
func (lt *LinearTransform) Evaluate(ev *ckks.Evaluator, enc *ckks.Encoder, ct *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	level := ct.Level()
	// Encode diagonals at exactly the modulus the following rescale will
	// consume, so the caller's rescale preserves ct.Scale exactly.
	scale := ev.TopModulus(level)
	// Hoist the baby-step rotations: each rot_j(ct) is computed once and
	// reused across all giant steps. The hoisted rotations are mutually
	// independent keyswitches, so they run concurrently on the limb worker
	// pool (the paper's "multiple rotations on a single ciphertext" batch).
	var babySteps []int
	seen := map[int]bool{}
	for d := range lt.Diags {
		if j := d % lt.N1; j != 0 && !seen[j] {
			seen[j] = true
			babySteps = append(babySteps, j)
		}
	}
	rotCache := map[int]*ckks.Ciphertext{0: ct}
	if len(babySteps) > 0 {
		rots := make([]*ckks.Ciphertext, len(babySteps))
		errs := make([]error, len(babySteps))
		parallel.For(len(babySteps), func(k int) {
			rots[k], errs[k] = ev.Rotate(ct, babySteps[k])
		})
		for k, j := range babySteps {
			if errs[k] != nil {
				return nil, errs[k]
			}
			rotCache[j] = rots[k]
		}
	}
	rotated := func(j int) (*ckks.Ciphertext, error) {
		if r, ok := rotCache[j]; ok {
			return r, nil
		}
		r, err := ev.Rotate(ct, j)
		if err != nil {
			return nil, err
		}
		rotCache[j] = r
		return r, nil
	}
	var acc *ckks.Ciphertext
	for i := 0; i*lt.N1 < lt.Slots; i++ {
		var inner *ckks.Ciphertext
		for j := 0; j < lt.N1; j++ {
			diag, ok := lt.Diags[i*lt.N1+j]
			if !ok {
				continue
			}
			// Pre-rotate the diagonal by −i·n1 so the outer rotation
			// realigns it.
			w := make([]complex128, lt.Slots)
			for k := range w {
				w[k] = diag[((k-i*lt.N1)%lt.Slots+lt.Slots)%lt.Slots]
			}
			pt, err := enc.Encode(w, level, scale)
			if err != nil {
				return nil, err
			}
			rj, err := rotated(j)
			if err != nil {
				return nil, err
			}
			term, err := ev.MulPlain(rj, pt)
			if err != nil {
				return nil, err
			}
			if inner == nil {
				inner = term
			} else if inner, err = ev.Add(inner, term); err != nil {
				return nil, err
			}
		}
		if inner == nil {
			continue
		}
		if i != 0 {
			var err error
			if inner, err = ev.Rotate(inner, i*lt.N1); err != nil {
				return nil, err
			}
		}
		if acc == nil {
			acc = inner
		} else {
			var err error
			if acc, err = ev.Add(acc, inner); err != nil {
				return nil, err
			}
		}
	}
	if acc == nil {
		return nil, fmt.Errorf("bootstrap: linear transform has no nonzero diagonal")
	}
	return acc, nil
}

// Apply evaluates the transform on a plaintext vector (reference path for
// tests).
func (lt *LinearTransform) Apply(v []complex128) []complex128 {
	out := make([]complex128, lt.Slots)
	for d, diag := range lt.Diags {
		for j := 0; j < lt.Slots; j++ {
			out[j] += diag[j] * v[(j+d)%lt.Slots]
		}
	}
	return out
}
