package bootstrap

import (
	"fmt"
	"math"

	"cinnamon/internal/ckks"
)

// Chebyshev is a truncated Chebyshev series for a function over [A, B].
type Chebyshev struct {
	A, B   float64
	Coeffs []float64 // c_0 .. c_d in the Chebyshev basis over [A,B]
}

// FitChebyshev interpolates f at the Chebyshev nodes of degree+1 points,
// returning the series whose truncation error is near-minimax for smooth f.
func FitChebyshev(f func(float64) float64, a, b float64, degree int) *Chebyshev {
	n := degree + 1
	fv := make([]float64, n)
	for j := 0; j < n; j++ {
		theta := math.Pi * (float64(j) + 0.5) / float64(n)
		x := math.Cos(theta)
		fv[j] = f((x*(b-a) + (b + a)) / 2)
	}
	coeffs := make([]float64, n)
	for k := 0; k < n; k++ {
		var s float64
		for j := 0; j < n; j++ {
			s += fv[j] * math.Cos(math.Pi*float64(k)*(float64(j)+0.5)/float64(n))
		}
		coeffs[k] = 2 * s / float64(n)
	}
	coeffs[0] /= 2
	return &Chebyshev{A: a, B: b, Coeffs: coeffs}
}

// EvalFloat evaluates the series at x by Clenshaw recurrence (reference
// path and precision tests).
func (c *Chebyshev) EvalFloat(x float64) float64 {
	y := (2*x - (c.B + c.A)) / (c.B - c.A)
	var b1, b2 float64
	for k := len(c.Coeffs) - 1; k >= 1; k-- {
		b1, b2 = 2*y*b1-b2+c.Coeffs[k], b1
	}
	return y*b1 - b2 + c.Coeffs[0]
}

// Degree returns the series degree.
func (c *Chebyshev) Degree() int { return len(c.Coeffs) - 1 }

// chebCtx carries the shared state of one homomorphic Chebyshev evaluation.
type chebCtx struct {
	ev *ckks.Evaluator
	T  map[int]*ckks.Ciphertext // T_k(y) for baby and giant indices
	m1 int                      // baby-step window (power of two)
}

// EvalChebyshev homomorphically evaluates the series on ct using the
// Paterson–Stockmeyer strategy over the Chebyshev basis: baby steps
// T_1..T_{m1}, giant steps T_{2^t·m1}, and a recursive split
// p = a·T_g + b using 2·T_m·T_n = T_{m+n} + T_{|m−n|}. Depth is
// O(log degree). Scales are tracked exactly; the tiny per-level drift from
// rescaling by primes ≈ Δ is absorbed by the evaluator's add tolerance.
func EvalChebyshev(ev *ckks.Evaluator, ct *ckks.Ciphertext, c *Chebyshev) (*ckks.Ciphertext, error) {
	params := ev.Params()
	d := c.Degree()
	if d < 1 {
		return nil, fmt.Errorf("bootstrap: chebyshev degree %d too small", d)
	}
	// y = (2x − (a+b))/(b−a), one level. The normalization constant is
	// encoded at the scale that lands y at exactly Δ after the rescale,
	// regardless of the input scale (bootstrapping feeds ciphertexts at
	// scale ≈ q0 here).
	delta := params.DefaultScale()
	ptScale := delta * ev.TopModulus(ct.Level()) / ct.Scale
	y, err := ev.MulConstAtScale(ct, complex(2/(c.B-c.A), 0), ptScale)
	if err != nil {
		return nil, err
	}
	if y, err = ev.Rescale(y); err != nil {
		return nil, err
	}
	if c.A != -c.B {
		if y, err = ev.AddConst(y, complex(-(c.A+c.B)/(c.B-c.A), 0)); err != nil {
			return nil, err
		}
	}
	m := 1
	for 1<<m < d+1 {
		m++
	}
	l := (m + 1) / 2
	cc := &chebCtx{ev: ev, T: map[int]*ckks.Ciphertext{1: y}, m1: 1 << l}
	// Baby steps T_2..T_{m1}.
	for k := 2; k <= cc.m1; k++ {
		if _, err := cc.power(k); err != nil {
			return nil, err
		}
	}
	// Giant steps T_{2·m1}, T_{4·m1}, ... up to degree.
	for g := 2 * cc.m1; g <= d; g <<= 1 {
		if _, err := cc.power(g); err != nil {
			return nil, err
		}
	}
	return cc.eval(c.Coeffs)
}

// power returns T_k, computing it from lower powers via
// T_{i+j} = 2·T_i·T_j − T_{|i−j|}.
func (cc *chebCtx) power(k int) (*ckks.Ciphertext, error) {
	if t, ok := cc.T[k]; ok {
		return t, nil
	}
	i := k / 2
	j := k - i
	ti, err := cc.power(i)
	if err != nil {
		return nil, err
	}
	tj, err := cc.power(j)
	if err != nil {
		return nil, err
	}
	ti, tj, err = alignLevels(cc.ev, ti, tj)
	if err != nil {
		return nil, err
	}
	prod, err := cc.ev.MulRelin(ti, tj)
	if err != nil {
		return nil, err
	}
	if prod, err = cc.ev.Rescale(prod); err != nil {
		return nil, err
	}
	if prod, err = cc.ev.Add(prod, prod); err != nil { // ×2
		return nil, err
	}
	if i == j {
		if prod, err = cc.ev.AddConst(prod, -1); err != nil { // T_0 = 1
			return nil, err
		}
	} else {
		td, err := cc.power(j - i)
		if err != nil {
			return nil, err
		}
		a, b, err := alignLevels(cc.ev, prod, td)
		if err != nil {
			return nil, err
		}
		if prod, err = cc.ev.Sub(a, b); err != nil {
			return nil, err
		}
	}
	cc.T[k] = prod
	return prod, nil
}

// eval recursively evaluates the series with the given Chebyshev
// coefficients (degree < 2^ceil(log2(len))).
func (cc *chebCtx) eval(coeffs []float64) (*ckks.Ciphertext, error) {
	coeffs = trimCoeffs(coeffs)
	d := len(coeffs) - 1
	if d < cc.m1 {
		return cc.evalDirect(coeffs)
	}
	// Split at the largest power-of-two g with g ≤ d < 2g.
	g := cc.m1
	for 2*g <= d {
		g <<= 1
	}
	a := make([]float64, d-g+1)
	a[0] = coeffs[g]
	for j := 1; j <= d-g; j++ {
		a[j] = 2 * coeffs[g+j]
	}
	b := make([]float64, g)
	copy(b, coeffs[:g])
	for j := 1; j <= d-g && g-j >= 0; j++ {
		b[g-j] -= coeffs[g+j]
	}
	actA, err := cc.eval(a)
	if err != nil {
		return nil, err
	}
	tg, err := cc.power(g)
	if err != nil {
		return nil, err
	}
	x, y, err := alignLevels(cc.ev, actA, tg)
	if err != nil {
		return nil, err
	}
	prod, err := cc.ev.MulRelin(x, y)
	if err != nil {
		return nil, err
	}
	if prod, err = cc.ev.Rescale(prod); err != nil {
		return nil, err
	}
	actB, err := cc.eval(b)
	if err != nil {
		return nil, err
	}
	p, q, err := alignLevels(cc.ev, prod, actB)
	if err != nil {
		return nil, err
	}
	return cc.ev.Add(p, q)
}

// evalDirect computes Σ c_k·T_k for degree < m1: all T_k dropped to a
// common level, one plaintext multiplication each, one rescale at the end.
func (cc *chebCtx) evalDirect(coeffs []float64) (*ckks.Ciphertext, error) {
	ev := cc.ev
	// Lowest level among the baby powers used.
	minLevel := 1 << 30
	used := []int{}
	for k := 1; k < len(coeffs); k++ {
		if coeffs[k] == 0 {
			continue
		}
		t, err := cc.power(k)
		if err != nil {
			return nil, err
		}
		used = append(used, k)
		if t.Level() < minLevel {
			minLevel = t.Level()
		}
	}
	if len(used) == 0 {
		// Constant polynomial: encode c_0 onto a zero-ish ciphertext by
		// scaling T_1 by zero. Use T_1 dropped one level for shape.
		t1 := cc.T[1]
		z, err := ev.MulConst(t1, 0)
		if err != nil {
			return nil, err
		}
		if z, err = ev.Rescale(z); err != nil {
			return nil, err
		}
		return ev.AddConst(z, complex(coeffs[0], 0))
	}
	var acc *ckks.Ciphertext
	for _, k := range used {
		t := cc.T[k]
		if t.Level() > minLevel {
			var err error
			if t, err = ev.DropLevel(t, minLevel); err != nil {
				return nil, err
			}
		}
		term, err := ev.MulConst(t, complex(coeffs[k], 0))
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = term
		} else if acc, err = ev.Add(acc, term); err != nil {
			return nil, err
		}
	}
	acc, err := ev.Rescale(acc)
	if err != nil {
		return nil, err
	}
	if coeffs[0] != 0 {
		if acc, err = ev.AddConst(acc, complex(coeffs[0], 0)); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

func trimCoeffs(c []float64) []float64 {
	d := len(c) - 1
	for d > 0 && c[d] == 0 {
		d--
	}
	return c[:d+1]
}

// alignLevels drops the higher-level operand so both sit at the same level.
func alignLevels(ev *ckks.Evaluator, a, b *ckks.Ciphertext) (*ckks.Ciphertext, *ckks.Ciphertext, error) {
	var err error
	if a.Level() > b.Level() {
		if a, err = ev.DropLevel(a, b.Level()); err != nil {
			return nil, nil, err
		}
	} else if b.Level() > a.Level() {
		if b, err = ev.DropLevel(b, a.Level()); err != nil {
			return nil, nil, err
		}
	}
	return a, b, nil
}
