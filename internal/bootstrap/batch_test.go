package bootstrap

import (
	"math/rand"
	"testing"

	"cinnamon/internal/ckks"
	"cinnamon/internal/ring"
)

// TestConsumedExitLevel pins the exact level budget of the default
// circuit: ScaleUp+ModRaise cost nothing, CoeffToSlot 1, EvalMod
// ceil(log2(Degree+1)) + DoubleAngle + its own rescale structure (3 fixed
// + chebDepth + r), SlotToCoeff 1 — totalling 3 + 6 + 3 = 12 for the
// default Degree-39, r=3 configuration.
func TestConsumedExitLevel(t *testing.T) {
	params, _ := bootstrapParams(t)
	pre, err := NewPrecomp(params, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := pre.Consumed(); got != 12 {
		t.Fatalf("Consumed() = %d, want 12 for the default config", got)
	}
	if got, want := pre.ExitLevel(), params.MaxLevel()-12; got != want {
		t.Fatalf("ExitLevel() = %d, want %d", got, want)
	}

	cfg := DefaultConfig()
	cfg.ArcsineCorrection = true
	preA, err := NewPrecomp(params, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := preA.Consumed(); got != 15 {
		t.Fatalf("Consumed() with arcsine = %d, want 15", got)
	}
}

func polysEqual(a, b *ring.Poly) bool {
	if a.Basis.Len() != b.Basis.Len() || a.IsNTT != b.IsNTT {
		return false
	}
	for l := range a.Limbs {
		for i := range a.Limbs[l] {
			if a.Limbs[l][i] != b.Limbs[l][i] {
				return false
			}
		}
	}
	return true
}

// TestBootstrapBatchBitIdentical is the batching contract: a ciphertext
// refreshed inside a shared tick is limb-for-limb identical to the same
// ciphertext bootstrapped alone. Two tenants (distinct key sets sharing
// one Precomp) ride one batch to exercise the cross-tenant grouping.
func TestBootstrapBatchBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("bootstrap end-to-end is expensive")
	}
	params, sk1 := bootstrapParams(t)
	pre, err := NewPrecomp(params, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(params)
	sk2, err := kg.GenSecretKey()
	if err != nil {
		t.Fatal(err)
	}

	mkBS := func(sk *ckks.SecretKey) *Bootstrapper {
		rlk, err := kg.GenRelinKey(sk)
		if err != nil {
			t.Fatal(err)
		}
		rtks, err := kg.GenRotationKeySet(sk, pre.Rotations(), true)
		if err != nil {
			t.Fatal(err)
		}
		bs, err := NewBootstrapperFromKeys(pre, rlk, rtks)
		if err != nil {
			t.Fatal(err)
		}
		return bs
	}
	bs1, bs2 := mkBS(sk1), mkBS(sk2)

	mkCT := func(sk *ckks.SecretKey, seed int64) *ckks.Ciphertext {
		pk, err := kg.GenPublicKey(sk)
		if err != nil {
			t.Fatal(err)
		}
		enc := ckks.NewEncoder(params)
		rng := rand.New(rand.NewSource(seed))
		v := make([]complex128, params.Slots())
		for i := range v {
			v[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		}
		pt, err := enc.Encode(v, params.MaxLevel(), params.DefaultScale())
		if err != nil {
			t.Fatal(err)
		}
		ct, err := ckks.NewEncryptor(params, pk).Encrypt(pt)
		if err != nil {
			t.Fatal(err)
		}
		low, err := bs1.Evaluator().DropLevel(ct, 0)
		if err != nil {
			t.Fatal(err)
		}
		return low
	}
	ct1, ct2, ct3 := mkCT(sk1, 7), mkCT(sk1, 8), mkCT(sk2, 9)

	solo := make([]*ckks.Ciphertext, 3)
	for i, c := range []struct {
		bs *Bootstrapper
		ct *ckks.Ciphertext
	}{{bs1, ct1}, {bs1, ct2}, {bs2, ct3}} {
		out, err := c.bs.Bootstrap(c.ct)
		if err != nil {
			t.Fatalf("solo bootstrap %d: %v", i, err)
		}
		solo[i] = out
	}

	items := []*BatchItem{
		{BS: bs1, CT: ct1},
		{BS: bs1, CT: ct2},
		{BS: bs2, CT: ct3},
	}
	BootstrapBatch(items)
	for i, it := range items {
		if it.Err != nil {
			t.Fatalf("batched bootstrap %d: %v", i, it.Err)
		}
		if it.Out.Scale != solo[i].Scale || it.Out.Level() != solo[i].Level() {
			t.Fatalf("item %d: batched (level %d, scale %g) vs solo (level %d, scale %g)",
				i, it.Out.Level(), it.Out.Scale, solo[i].Level(), solo[i].Scale)
		}
		if !polysEqual(it.Out.C0, solo[i].C0) || !polysEqual(it.Out.C1, solo[i].C1) {
			t.Fatalf("item %d: batched bootstrap is not bit-identical to solo", i)
		}
	}

	// Per-item failures stay per-item: a bad input poisons only itself.
	bad := &BatchItem{BS: bs1, CT: solo[0]} // wrong level (not 0)
	good := &BatchItem{BS: bs1, CT: ct1}
	BootstrapBatch([]*BatchItem{bad, good})
	if bad.Err == nil {
		t.Fatal("level-4 input accepted by a batch")
	}
	if good.Err != nil {
		t.Fatalf("good item failed alongside a bad one: %v", good.Err)
	}
	if !polysEqual(good.Out.C0, solo[0].C0) || !polysEqual(good.Out.C1, solo[0].C1) {
		t.Fatal("good item's result changed when batched with a failing item")
	}
}
