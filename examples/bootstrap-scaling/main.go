// Bootstrap-scaling: run a REAL bootstrap — not a simulation — through the
// from-scratch CKKS implementation: encrypt, exhaust the modulus chain with
// genuine multiplications, refresh with the full ModRaise → CoeffToSlot →
// EvalMod → SlotToCoeff pipeline, and keep computing on the refreshed
// ciphertext. This is the functional counterpart of the kernel the whole
// Cinnamon framework accelerates.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cinnamon/internal/bootstrap"
	"cinnamon/internal/ckks"
)

func main() {
	logQ := []int{60}
	for i := 0; i < 16; i++ {
		logQ = append(logQ, 45)
	}
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:          10, // small ring: bootstrapping is expensive on a CPU
		LogQ:          logQ,
		LogP:          []int{58, 58, 58, 58},
		LogScale:      45,
		Seed:          42,
		HammingWeight: 32,
	})
	if err != nil {
		log.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(params)
	sk, _ := kg.GenSecretKey()
	pk, _ := kg.GenPublicKey(sk)
	enc := ckks.NewEncoder(params)
	encryptor := ckks.NewEncryptor(params, pk)
	decryptor := ckks.NewDecryptor(params, sk)

	fmt.Println("building bootstrapper (DFT matrices + rotation keys)...")
	bs, err := bootstrap.NewBootstrapper(params, sk, bootstrap.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	eval := bs.Evaluator()

	slots := params.Slots()
	rng := rand.New(rand.NewSource(5))
	v := make([]complex128, slots)
	for i := range v {
		v[i] = complex(rng.Float64()*2-1, 0)
	}
	pt, _ := enc.Encode(v, params.MaxLevel(), params.DefaultScale())
	ct, err := encryptor.Encrypt(pt)
	if err != nil {
		log.Fatal(err)
	}

	// Burn the budget squaring, keeping one level to normalize the
	// rescaling drift before the bootstrap (which requires an exact Δ).
	want := append([]complex128(nil), v...)
	squarings := 0
	for ct.Level() > 1 {
		if ct, err = eval.MulRelin(ct, ct); err != nil {
			log.Fatal(err)
		}
		if ct, err = eval.Rescale(ct); err != nil {
			log.Fatal(err)
		}
		for i := range want {
			want[i] *= want[i]
		}
		squarings++
	}
	if ct, err = eval.SetScale(ct, params.DefaultScale()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consumed the chain with %d squarings; level is now %d\n", squarings, ct.Level())

	fmt.Println("bootstrapping...")
	refreshed, err := bs.Bootstrap(ct)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("refreshed to level %d of %d\n", refreshed.Level(), params.MaxLevel())

	// Verify and keep computing.
	check := func(c *ckks.Ciphertext, ref []complex128, label string) {
		p, err := decryptor.Decrypt(c)
		if err != nil {
			log.Fatal(err)
		}
		got, err := enc.Decode(p, slots)
		if err != nil {
			log.Fatal(err)
		}
		worst := 0.0
		for i := range ref {
			d := got[i] - ref[i]
			if e := real(d)*real(d) + imag(d)*imag(d); e > worst {
				worst = e
			}
		}
		fmt.Printf("%s: worst slot error %.2e\n", label, worst)
	}
	check(refreshed, want, "after bootstrap")
	more, err := eval.MulRelin(refreshed, refreshed)
	if err != nil {
		log.Fatal(err)
	}
	if more, err = eval.Rescale(more); err != nil {
		log.Fatal(err)
	}
	for i := range want {
		want[i] *= want[i]
	}
	check(more, want, "after one more squaring")
}
