// Quickstart: encrypt a vector, compute (x² + 2x) · y homomorphically,
// decrypt, and compare with the plaintext computation — the smallest
// end-to-end tour of the CKKS core this repository implements from scratch.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cinnamon/internal/ckks"
)

func main() {
	// A small but real parameter set: N=2^12, five 45-bit chain moduli.
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     12,
		LogQ:     []int{55, 45, 45, 45, 45},
		LogP:     []int{58, 58},
		LogScale: 45,
		Seed:     2024,
	})
	if err != nil {
		log.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(params)
	sk, err := kg.GenSecretKey()
	if err != nil {
		log.Fatal(err)
	}
	pk, err := kg.GenPublicKey(sk)
	if err != nil {
		log.Fatal(err)
	}
	rlk, err := kg.GenRelinKey(sk)
	if err != nil {
		log.Fatal(err)
	}
	enc := ckks.NewEncoder(params)
	encryptor := ckks.NewEncryptor(params, pk)
	decryptor := ckks.NewDecryptor(params, sk)
	eval := ckks.NewEvaluator(params, rlk, nil)

	// Plaintext data.
	slots := 8
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, slots)
	y := make([]complex128, slots)
	for i := range x {
		x[i] = complex(rng.Float64(), 0)
		y[i] = complex(rng.Float64(), 0)
	}

	encryptVec := func(v []complex128) *ckks.Ciphertext {
		pt, err := enc.Encode(v, params.MaxLevel(), params.DefaultScale())
		if err != nil {
			log.Fatal(err)
		}
		ct, err := encryptor.Encrypt(pt)
		if err != nil {
			log.Fatal(err)
		}
		return ct
	}
	ctX := encryptVec(x)
	ctY := encryptVec(y)

	// x² + 2x, then multiply by y. Every Mul is followed by a rescale.
	sq, err := eval.MulRelin(ctX, ctX)
	if err != nil {
		log.Fatal(err)
	}
	if sq, err = eval.Rescale(sq); err != nil {
		log.Fatal(err)
	}
	twoX, err := eval.MulConst(ctX, 2)
	if err != nil {
		log.Fatal(err)
	}
	if twoX, err = eval.Rescale(twoX); err != nil {
		log.Fatal(err)
	}
	sum, err := eval.Add(sq, twoX)
	if err != nil {
		log.Fatal(err)
	}
	ctYdrop, err := eval.DropLevel(ctY, sum.Level())
	if err != nil {
		log.Fatal(err)
	}
	prod, err := eval.MulRelin(sum, ctYdrop)
	if err != nil {
		log.Fatal(err)
	}
	if prod, err = eval.Rescale(prod); err != nil {
		log.Fatal(err)
	}

	pt, err := decryptor.Decrypt(prod)
	if err != nil {
		log.Fatal(err)
	}
	got, err := enc.Decode(pt, slots)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("slot  homomorphic         plaintext           |error|")
	for i := 0; i < slots; i++ {
		want := (x[i]*x[i] + 2*x[i]) * y[i]
		fmt.Printf("%4d  %18.12f %18.12f  %.2e\n", i, real(got[i]), real(want), absc(got[i]-want))
	}
}

func absc(c complex128) float64 {
	r, im := real(c), imag(c)
	if r < 0 {
		r = -r
	}
	if im < 0 {
		im = -im
	}
	return r + im
}
