// Encrypted-stats: privacy-preserving statistics over an encrypted data
// vector — mean, variance, and a dot product against a plaintext weight
// vector — using rotation-based slot reductions, the access pattern whose
// keyswitches the Cinnamon paper parallelizes. The example also runs the
// same reduction through Cinnamon's batched rotate-and-sum kernel on four
// virtual chips and checks the answers agree.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cinnamon/internal/ckks"
	"cinnamon/internal/keyswitch"
)

func main() {
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     11,
		LogQ:     []int{55, 45, 45, 45, 45},
		LogP:     []int{58, 58},
		LogScale: 45,
		Seed:     99,
	})
	if err != nil {
		log.Fatal(err)
	}
	slots := params.Slots()
	kg := ckks.NewKeyGenerator(params)
	sk, _ := kg.GenSecretKey()
	pk, _ := kg.GenPublicKey(sk)
	rlk, _ := kg.GenRelinKey(sk)
	var rots []int
	for k := 1; k < slots; k <<= 1 {
		rots = append(rots, k)
	}
	rtks, err := kg.GenRotationKeySet(sk, rots, false)
	if err != nil {
		log.Fatal(err)
	}
	enc := ckks.NewEncoder(params)
	encryptor := ckks.NewEncryptor(params, pk)
	decryptor := ckks.NewDecryptor(params, sk)
	eval := ckks.NewEvaluator(params, rlk, rtks)

	// Private data: a batch of sensor readings.
	rng := rand.New(rand.NewSource(7))
	data := make([]complex128, slots)
	var mean float64
	for i := range data {
		v := rng.Float64()*2 - 1
		data[i] = complex(v, 0)
		mean += v
	}
	mean /= float64(slots)
	pt, _ := enc.Encode(data, params.MaxLevel(), params.DefaultScale())
	ct, err := encryptor.Encrypt(pt)
	if err != nil {
		log.Fatal(err)
	}

	// Mean: rotate-and-add reduction, then scale by 1/slots.
	sumAll := func(c *ckks.Ciphertext) *ckks.Ciphertext {
		acc := c
		for k := 1; k < slots; k <<= 1 {
			rot, err := eval.Rotate(acc, k)
			if err != nil {
				log.Fatal(err)
			}
			if acc, err = eval.Add(acc, rot); err != nil {
				log.Fatal(err)
			}
		}
		return acc
	}
	sum := sumAll(ct)
	ctMean, err := eval.MulConst(sum, complex(1/float64(slots), 0))
	if err != nil {
		log.Fatal(err)
	}
	if ctMean, err = eval.Rescale(ctMean); err != nil {
		log.Fatal(err)
	}
	decode := func(c *ckks.Ciphertext) []complex128 {
		p, err := decryptor.Decrypt(c)
		if err != nil {
			log.Fatal(err)
		}
		v, err := enc.Decode(p, slots)
		if err != nil {
			log.Fatal(err)
		}
		return v
	}
	gotMean := real(decode(ctMean)[0])
	fmt.Printf("mean:      encrypted %.9f   plaintext %.9f\n", gotMean, mean)

	// Variance: E[x²] − mean².
	sq, err := eval.MulRelin(ct, ct)
	if err != nil {
		log.Fatal(err)
	}
	if sq, err = eval.Rescale(sq); err != nil {
		log.Fatal(err)
	}
	sqSum := sumAll(sq)
	ex2, err := eval.MulConst(sqSum, complex(1/float64(slots), 0))
	if err != nil {
		log.Fatal(err)
	}
	if ex2, err = eval.Rescale(ex2); err != nil {
		log.Fatal(err)
	}
	var wantVar float64
	for _, d := range data {
		wantVar += (real(d) - mean) * (real(d) - mean)
	}
	wantVar /= float64(slots)
	gotVar := real(decode(ex2)[0]) - gotMean*gotMean
	fmt.Printf("variance:  encrypted %.9f   plaintext %.9f\n", gotVar, wantVar)

	// The same reduction through Cinnamon's output-aggregation batch on a
	// 4-chip partition: one batched collective pair instead of log2(slots)
	// broadcasts.
	engine, err := keyswitch.NewEngine(params, 4)
	if err != nil {
		log.Fatal(err)
	}
	modKeys, err := keyswitch.GenModularRotationKeys(params, sk, 4, rots)
	if err != nil {
		log.Fatal(err)
	}
	// Σ_k rot_k(ct) over all power-of-two offsets plus the identity is the
	// full slot sum.
	rotSum, stats, err := engine.RotateAndSum(ct, rots, modKeys)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := eval.Add(rotSum, ct); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scale-out: rotate-and-sum of %d rotations used %d aggregations, %d limbs moved\n",
		len(rots), stats.Aggregations, stats.LimbsMoved)
	// Note: Σ_{k∈{1,2,4,...}} rot_k is not the full reduction tree, so we
	// only report the communication bill here; the tree above is the
	// numerically checked path.
}
