// BERT-scaleout: compile the Cinnamon bootstrap kernel at the paper's
// parameters (N = 64K, 52-limb chain) for 4, 8 and 12 chips, simulate it
// cycle-level, and compose a BERT-Base 128-token encrypted inference from
// the kernel times — reproducing the paper's headline scaling experiment
// (§7.1) end to end through the DSL → IR → compiler → simulator stack.
package main

import (
	"fmt"
	"log"

	"cinnamon/internal/workloads"
)

func main() {
	fmt.Println("Compiling and simulating kernels at N=64K (this takes a minute)...")
	var bert workloads.App
	for _, a := range workloads.Apps() {
		if a.Name == "BERT" {
			bert = a
		}
	}
	fmt.Printf("BERT-Base, 128 tokens: %d bootstraps, %d matmul kernels, %d activation kernels\n",
		bert.Bootstraps, bert.Matmuls, bert.Activations)
	fmt.Printf("parallelizable fraction (attention + GELU streams): %.0f%%\n\n", bert.ParallelFrac*100)

	kt, err := workloads.SimulateKernels(4, workloads.ModeCinnamonPass, workloads.DefaultSimConfig(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel times on a 4-chip group: bootstrap %.2f ms, matmul %.2f ms, activation %.2f ms\n\n",
		kt.Bootstrap*1e3, kt.Matmul*1e3, kt.Activation*1e3)

	fmt.Printf("%-14s %8s %12s %14s\n", "Config", "groups", "inference", "vs 48-core CPU")
	for _, cfg := range []struct {
		name   string
		groups int
	}{
		{"Cinnamon-4", 1}, {"Cinnamon-8", 2}, {"Cinnamon-12", 3},
	} {
		t := bert.Time(kt, cfg.groups)
		fmt.Printf("%-14s %8d %10.2f s %13.0fx\n", cfg.name, cfg.groups, t, bert.CPUSeconds/t)
	}
	fmt.Println("\nThe paper reports 3.83 s / 2.07 s / 1.67 s and a 36,600x CPU speedup at 12 chips;")
	fmt.Println("our simulator reproduces the scaling shape (Amdahl over the 85% parallel fraction).")
}
