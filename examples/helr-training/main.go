// HELR-training: encrypted logistic-regression training (the paper's HELR
// benchmark, §6.2) executed for real on the CKKS core: the server updates
// model weights by gradient descent on an encrypted mini-batch without
// ever seeing the data. The sigmoid is the usual degree-3 least-squares
// polynomial 0.5 + 0.15·z − 0.0015·z³ (Kim et al.), and features are
// packed one-example-per-slot per feature ciphertext.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cinnamon/internal/ckks"
)

const (
	features = 4
	epochs   = 8
	lr       = 1.0
)

func main() {
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     12,
		LogQ:     []int{55, 45, 45, 45, 45, 45, 45, 45, 45, 45, 45, 45, 45},
		LogP:     []int{58, 58, 58},
		LogScale: 45,
		Seed:     11,
	})
	if err != nil {
		log.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(params)
	sk, _ := kg.GenSecretKey()
	pk, _ := kg.GenPublicKey(sk)
	rlk, _ := kg.GenRelinKey(sk)
	batch := 256
	var rots []int
	for k := 1; k < batch; k <<= 1 {
		rots = append(rots, k)
	}
	rtks, err := kg.GenRotationKeySet(sk, rots, false)
	if err != nil {
		log.Fatal(err)
	}
	enc := ckks.NewEncoder(params)
	encryptor := ckks.NewEncryptor(params, pk)
	decryptor := ckks.NewDecryptor(params, sk)
	eval := ckks.NewEvaluator(params, rlk, rtks)

	// Synthetic separable data: label = sign(w*·x) with noise.
	rng := rand.New(rand.NewSource(3))
	trueW := []float64{1.2, -0.8, 0.5, 0.3}
	X := make([][]float64, features) // feature-major
	y := make([]float64, batch)      // labels in {−1, +1}
	for f := range X {
		X[f] = make([]float64, batch)
	}
	for i := 0; i < batch; i++ {
		var dot float64
		for f := 0; f < features; f++ {
			v := rng.NormFloat64() * 0.5
			X[f][i] = v
			dot += trueW[f] * v
		}
		if dot+rng.NormFloat64()*0.1 > 0 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}

	// Encrypt y·x per feature (the HELR trick: gradients need y·x only).
	ctYX := make([]*ckks.Ciphertext, features)
	for f := 0; f < features; f++ {
		v := make([]complex128, batch)
		for i := 0; i < batch; i++ {
			v[i] = complex(y[i]*X[f][i], 0)
		}
		pt, err := enc.Encode(v, params.MaxLevel(), params.DefaultScale())
		if err != nil {
			log.Fatal(err)
		}
		if ctYX[f], err = encryptor.Encrypt(pt); err != nil {
			log.Fatal(err)
		}
	}

	// Plaintext-side weights are public to the model owner; the DATA stays
	// encrypted. Each iteration computes z = Σ_f w_f·(y·x_f) homomorphically,
	// applies the sigmoid polynomial, and produces encrypted per-feature
	// gradients whose slot-sums update the weights.
	w := make([]float64, features)
	sumSlots := func(c *ckks.Ciphertext) *ckks.Ciphertext {
		acc := c
		for k := 1; k < batch; k <<= 1 {
			rot, err := eval.Rotate(acc, k)
			if err != nil {
				log.Fatal(err)
			}
			if acc, err = eval.Add(acc, rot); err != nil {
				log.Fatal(err)
			}
		}
		return acc
	}
	for epoch := 0; epoch < epochs; epoch++ {
		// z_i = Σ_f w_f · y_i x_{f,i}  (one MulConst per feature).
		var z *ckks.Ciphertext
		for f := 0; f < features; f++ {
			t, err := eval.MulConst(ctYX[f], complex(w[f], 0))
			if err != nil {
				log.Fatal(err)
			}
			if t, err = eval.Rescale(t); err != nil {
				log.Fatal(err)
			}
			if z == nil {
				z = t
			} else if z, err = eval.Add(z, t); err != nil {
				log.Fatal(err)
			}
		}
		// σ'(z) factor: g_i = 0.5 + 0.15 z − 0.0015 z³ ≈ σ(z); the gradient
		// of the log-likelihood uses (1 − σ(z)) y x = ... following HELR we
		// update with g = σ(−z)·y·x ≈ (0.5 − 0.15z + 0.0015z³).
		z2, err := eval.MulRelin(z, z)
		if err != nil {
			log.Fatal(err)
		}
		if z2, err = eval.Rescale(z2); err != nil {
			log.Fatal(err)
		}
		z3, err := eval.MulRelin(z2, mustDrop(eval, z, z2.Level()))
		if err != nil {
			log.Fatal(err)
		}
		if z3, err = eval.Rescale(z3); err != nil {
			log.Fatal(err)
		}
		// s = 0.5 − 0.15·z + 0.0015·z³  (σ(−z) approximation)
		t1, err := eval.MulConst(z, complex(-0.15, 0))
		if err != nil {
			log.Fatal(err)
		}
		if t1, err = eval.Rescale(t1); err != nil {
			log.Fatal(err)
		}
		t2, err := eval.MulConst(z3, complex(0.0015, 0))
		if err != nil {
			log.Fatal(err)
		}
		if t2, err = eval.Rescale(t2); err != nil {
			log.Fatal(err)
		}
		s, err := eval.Add(mustDrop(eval, t1, t2.Level()), t2)
		if err != nil {
			log.Fatal(err)
		}
		if s, err = eval.AddConst(s, 0.5); err != nil {
			log.Fatal(err)
		}
		// Per-feature gradient Σ_i s_i·y_i·x_{f,i}; decrypt only the scalar
		// weight update (the model owner holds the key in this protocol).
		for f := 0; f < features; f++ {
			g, err := eval.MulRelin(mustDrop(eval, ctYX[f], s.Level()), s)
			if err != nil {
				log.Fatal(err)
			}
			if g, err = eval.Rescale(g); err != nil {
				log.Fatal(err)
			}
			gsum := sumSlots(g)
			pt, err := decryptor.Decrypt(gsum)
			if err != nil {
				log.Fatal(err)
			}
			vals, err := enc.Decode(pt, batch)
			if err != nil {
				log.Fatal(err)
			}
			w[f] += lr * real(vals[0]) / float64(batch)
		}
		fmt.Printf("epoch %d: w = %+.4f %+.4f %+.4f %+.4f   accuracy = %.1f%%\n",
			epoch+1, w[0], w[1], w[2], w[3], accuracy(w, X, y)*100)
	}
	fmt.Printf("true direction: %+.4f %+.4f %+.4f %+.4f (up to scale)\n",
		trueW[0], trueW[1], trueW[2], trueW[3])
}

func mustDrop(eval *ckks.Evaluator, ct *ckks.Ciphertext, level int) *ckks.Ciphertext {
	out, err := eval.DropLevel(ct, level)
	if err != nil {
		log.Fatal(err)
	}
	return out
}

func accuracy(w []float64, X [][]float64, y []float64) float64 {
	correct := 0
	for i := range y {
		var dot float64
		for f := range w {
			dot += w[f] * X[f][i]
		}
		if (dot > 0) == (y[i] > 0) {
			correct++
		}
	}
	return float64(correct) / float64(len(y))
}
