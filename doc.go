// Package cinnamon is a from-scratch Go reproduction of "Cinnamon: A
// Framework for Scale-Out Encrypted AI" (ASPLOS 2025): a CKKS FHE library
// with bootstrapping, the Cinnamon DSL/compiler stack with parallel
// keyswitching algorithms, a functional multi-chip emulator, a cycle-level
// scale-out simulator, and the experiment harness that regenerates the
// paper's tables and figures. See README.md and DESIGN.md.
package cinnamon
