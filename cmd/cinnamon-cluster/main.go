// Command cinnamon-cluster is the cluster verification tool: it connects
// to a set of cinnamon-worker processes, runs serve workloads through the
// distributed keyswitch collectives (ciphertext limbs partitioned across
// the workers), and checks the results bit-for-bit against a
// single-process run of the same workloads. It is what the CI cluster
// smoke uses to prove that a real multi-process cluster computes exactly
// what one process computes.
//
// Usage:
//
//	cinnamon-cluster -workers localhost:9101,localhost:9102,localhost:9103
//	cinnamon-cluster -workers ... -programs quartic,rotsum -logn 8 -levels 3
//
// Exit status is 0 only if every program matched bit-exactly; the final
// line of output is a JSON snapshot of the cluster transport counters.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"cinnamon/internal/ckks"
	"cinnamon/internal/cluster"
	"cinnamon/internal/workloads"
)

func main() {
	workers := flag.String("workers", "", "comma-separated cinnamon-worker addresses (required)")
	programs := flag.String("programs", "quartic,rotsum", "comma-separated serve workloads to verify")
	logN := flag.Int("logn", 8, "ring degree log2 (must match workers)")
	levels := flag.Int("levels", 3, "multiplicative levels (must match workers)")
	seed := flag.Int64("seed", 20260805, "parameter generation seed (must match workers)")
	flag.Parse()

	if *workers == "" {
		fmt.Fprintln(os.Stderr, "error: -workers is required")
		os.Exit(2)
	}
	ok, err := run(*workers, *programs, *logN, *levels, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if !ok {
		os.Exit(1)
	}
}

func run(workerAddrs, programList string, logN, levels int, seed int64) (bool, error) {
	params, err := ckks.NewParameters(workloads.ServeParamsLiteral(logN, levels, seed))
	if err != nil {
		return false, err
	}

	var dialers []cluster.Dialer
	for _, a := range strings.Split(workerAddrs, ",") {
		if a = strings.TrimSpace(a); a != "" {
			dialers = append(dialers, cluster.TCPDialer{Addr: a})
		}
	}
	eng, err := cluster.NewEngine(params, dialers, cluster.Options{})
	if err != nil {
		return false, fmt.Errorf("cluster startup: %w", err)
	}
	defer eng.Close()
	log.Printf("cluster up: %d workers", eng.NChips())

	// Key material and two evaluators over it: `distributed` keyswitches
	// through the cluster, `local` runs the stock single-process path.
	kg := ckks.NewKeyGenerator(params)
	sk, err := kg.GenSecretKey()
	if err != nil {
		return false, err
	}
	pk, err := kg.GenPublicKey(sk)
	if err != nil {
		return false, err
	}
	rlk, err := kg.GenRelinKey(sk)
	if err != nil {
		return false, err
	}

	names := strings.Split(programList, ",")
	rotSet := map[int]bool{}
	for _, name := range names {
		spec, ok := workloads.ServeWorkloadByName(strings.TrimSpace(name))
		if !ok {
			return false, fmt.Errorf("unknown serve workload %q", name)
		}
		for _, r := range spec.Rotations {
			rotSet[r] = true
		}
	}
	rots := make([]int, 0, len(rotSet))
	for r := range rotSet {
		rots = append(rots, r)
	}
	rtks, err := kg.GenRotationKeySet(sk, rots, false)
	if err != nil {
		return false, err
	}

	enc := ckks.NewEncoder(params)
	encr := ckks.NewEncryptor(params, pk)
	distributed := ckks.NewEvaluator(params, rlk, rtks)
	distributed.SetKeySwitcher(eng)
	local := ckks.NewEvaluator(params, rlk, rtks)

	allPass := true
	rng := rand.New(rand.NewSource(seed))
	for _, name := range names {
		name = strings.TrimSpace(name)
		spec, _ := workloads.ServeWorkloadByName(name)
		v := make([]complex128, params.Slots())
		for i := range v {
			v[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		}
		pt, err := enc.Encode(v, params.MaxLevel(), params.DefaultScale())
		if err != nil {
			return false, err
		}
		ct, err := encr.Encrypt(pt)
		if err != nil {
			return false, err
		}

		got, err := spec.Reference(distributed, enc, ct)
		if err != nil {
			return false, fmt.Errorf("%s via cluster: %w", name, err)
		}
		want, err := spec.Reference(local, enc, ct)
		if err != nil {
			return false, fmt.Errorf("%s locally: %w", name, err)
		}
		if bitExact(got, want) {
			log.Printf("PASS %-8s bit-exact across %d workers (level %d->%d)", name, eng.NChips(), params.MaxLevel(), got.Level())
		} else {
			log.Printf("FAIL %-8s distributed result differs from single-process run", name)
			allPass = false
		}
	}

	snap, err := json.Marshal(eng.Snapshot())
	if err != nil {
		return false, err
	}
	fmt.Println(string(snap))
	if fb := eng.Snapshot().LocalFallbacks; fb > 0 {
		log.Printf("warning: %d collectives fell back to local execution", fb)
	}
	return allPass, nil
}

func bitExact(a, b *ckks.Ciphertext) bool {
	if a.Scale != b.Scale || len(a.C0.Limbs) != len(b.C0.Limbs) {
		return false
	}
	for j := range a.C0.Limbs {
		for i := range a.C0.Limbs[j] {
			if a.C0.Limbs[j][i] != b.C0.Limbs[j][i] || a.C1.Limbs[j][i] != b.C1.Limbs[j][i] {
				return false
			}
		}
	}
	return true
}
