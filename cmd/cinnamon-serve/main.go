// Command cinnamon-serve runs the encrypted-inference serving runtime
// over HTTP: it compiles the serve catalog at startup, then accepts
// marshaled CKKS ciphertexts from registered tenants, batches them into
// shared emulator runs, and returns the encrypted results.
//
// Usage:
//
//	cinnamon-serve -addr :8080
//	cinnamon-serve -addr :8080 -logn 9 -levels 4 -max-batch 8 -batch-wait 5ms
//	cinnamon-serve -addr :8080 -cluster localhost:9101,localhost:9102,localhost:9103
//
// With -cluster, requests execute over the scale-out worker cluster
// (cinnamon-worker processes, one chip each): ciphertext limbs are
// partitioned across the workers and every keyswitch runs the paper's
// network collectives. The local emulator stays as the fallback path when
// workers are lost.
//
// Endpoints (see internal/serve for the wire protocol):
//
//	GET  /healthz
//	GET  /metrics
//	GET  /v1/params
//	GET  /v1/programs
//	POST /v1/tenants/{tenant}/keys
//	POST /v1/programs/{name}:run      (X-Cinnamon-Tenant header)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"cinnamon/internal/cluster"
	"cinnamon/internal/serve"
	"cinnamon/internal/workloads"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	logN := flag.Int("logn", 8, "ring degree log2 (2^logN coefficients)")
	levels := flag.Int("levels", 4, "multiplicative levels (4 fits the depth-4 tensor catalog)")
	seed := flag.Int64("seed", 20260805, "parameter generation seed (clients must match)")
	maxBatch := flag.Int("max-batch", 4, "largest compiled batch variant (power of two)")
	batchWait := flag.Duration("batch-wait", 2*time.Millisecond, "max time a request waits for batch-mates")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "emulator worker goroutines")
	limbWorkers := flag.Int("limb-workers", 0, "limb-parallel arithmetic workers per operation (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "per-(program,tenant) queue depth before shedding")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request execution timeout")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain deadline")
	clusterAddrs := flag.String("cluster", "", "comma-separated cinnamon-worker addresses (host:port,...); empty = local emulator only")
	flag.Parse()

	if err := run(*addr, *logN, *levels, *seed, *maxBatch, *batchWait, *workers, *limbWorkers, *queue, *timeout, *drain, *clusterAddrs); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run(addr string, logN, levels int, seed int64, maxBatch int, batchWait time.Duration, workers, limbWorkers, queue int, timeout, drain time.Duration, clusterAddrs string) error {
	lit := workloads.ServeParamsLiteral(logN, levels, seed)
	log.Printf("compiling serve catalog (logN=%d levels=%d seed=%d maxBatch=%d)...", logN, levels, seed, maxBatch)
	start := time.Now()
	reg, err := serve.NewRegistry(serve.RegistryConfig{Literal: lit, MaxBatch: maxBatch})
	if err != nil {
		return err
	}
	for _, name := range reg.ProgramNames() {
		p, _ := reg.Program(name)
		log.Printf("  program %-8s batches=%v keys=%v outLevel=%d", name, p.BatchSizes(), p.RequiredKeys, p.OutLevel)
	}
	for _, reason := range reg.Skipped {
		log.Printf("  skipped %s (raise -levels/-logn to serve it)", reason)
	}
	log.Printf("catalog ready in %v", time.Since(start).Round(time.Millisecond))

	var clusterEng *cluster.Engine
	if clusterAddrs != "" {
		var dialers []cluster.Dialer
		for _, a := range strings.Split(clusterAddrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				dialers = append(dialers, cluster.TCPDialer{Addr: a})
			}
		}
		if len(dialers) == 0 {
			return fmt.Errorf("-cluster given but no worker addresses parsed from %q", clusterAddrs)
		}
		log.Printf("connecting to %d cluster workers...", len(dialers))
		var err error
		clusterEng, err = cluster.NewEngine(reg.Params, dialers, cluster.Options{})
		if err != nil {
			return fmt.Errorf("cluster startup: %w", err)
		}
		defer clusterEng.Close()
		log.Printf("cluster up: %d workers, limb partition chip=j%%%d", clusterEng.NChips(), clusterEng.NChips())
	}

	core := serve.NewCore(reg, serve.Config{
		MaxBatch:       maxBatch,
		BatchWait:      batchWait,
		Workers:        workers,
		LimbWorkers:    limbWorkers,
		QueueDepth:     queue,
		RequestTimeout: timeout,
		Cluster:        clusterEng,
	})

	srv := &http.Server{Addr: addr, Handler: serve.NewHandler(core, serve.HandlerConfig{})}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving on %s", addr)
		errCh <- srv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		log.Printf("%v: draining (deadline %v)...", sig, drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	// Stop accepting new connections first, then drain queued requests.
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	if err := core.Close(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	snap := core.Metrics().Snapshot()
	log.Printf("done: %d completed, %d rejected, %d errors, avg batch occupancy %.2f",
		snap.Completed, snap.Rejected, snap.Errors, snap.AvgBatchOccupancy)
	return nil
}
