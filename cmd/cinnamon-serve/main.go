// Command cinnamon-serve runs the encrypted-inference serving runtime
// over HTTP: it compiles the serve catalog at startup, then accepts
// marshaled CKKS ciphertexts from registered tenants, batches them into
// shared emulator runs, and returns the encrypted results.
//
// Usage:
//
//	cinnamon-serve -addr :8080
//	cinnamon-serve -addr :8080 -logn 9 -levels 4 -max-batch 8 -batch-wait 5ms
//	cinnamon-serve -addr :8080 -cluster localhost:9101,localhost:9102,localhost:9103
//	cinnamon-serve -addr :8080 -levels 16 -bootstrap
//
// With -bootstrap, the parameter set switches to a sparse secret (the
// serve bootstrap literal), the registry precompiles the shared bootstrap
// circuit, catalog programs deeper than the modulus chain compile as
// scheduler-path entries with mid-program refreshes, and the encrypted
// session endpoints (/v1/sessions) are live.
//
// With -cluster, requests execute over the scale-out worker cluster
// (cinnamon-worker processes, one chip each): ciphertext limbs are
// partitioned across the workers and every keyswitch runs the paper's
// network collectives. The local emulator stays as the fallback path when
// workers are lost (unless -require-cluster).
//
// Semicolons split -cluster into independent backends (failure domains),
// each its own fully-dialed cluster behind its own circuit breaker;
// requests fail over between them and /healthz enumerates each:
//
//	cinnamon-serve -cluster "host1:9101,host1:9102;host2:9101,host2:9102" -require-cluster
//
// With -session-log, encrypted sessions checkpoint to an append-only
// CRC-framed log after every step and are replayed at boot, so a server
// restart resumes in-flight sessions bit-exactly (clients re-upload their
// key bundle — key material is not persisted — and retry the step).
//
// With -key-budget-mb, resident tenant evaluation keys are capped: a
// hard-budget LRU keeps the hot tenants decoded in RAM while colder
// bundles spill to a content-addressed CRC-framed key store
// (-key-spill-dir) and reload transparently — prefetched at batch
// admission so warm-tenant latency is untouched. /metrics reports the
// tier under "key_cache".
//
// Endpoints (see internal/serve for the wire protocol):
//
//	GET  /healthz
//	GET  /metrics
//	GET  /v1/params
//	GET  /v1/programs
//	POST /v1/tenants/{tenant}/keys
//	POST /v1/programs/{name}:run      (X-Cinnamon-Tenant header)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"cinnamon/internal/bootstrap"
	"cinnamon/internal/cluster"
	"cinnamon/internal/serve"
	"cinnamon/internal/workloads"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	logN := flag.Int("logn", 8, "ring degree log2 (2^logN coefficients)")
	levels := flag.Int("levels", 4, "multiplicative levels (4 fits the depth-4 tensor catalog)")
	seed := flag.Int64("seed", 20260805, "parameter generation seed (clients must match)")
	maxBatch := flag.Int("max-batch", 4, "largest compiled batch variant (power of two)")
	batchWait := flag.Duration("batch-wait", 2*time.Millisecond, "max time a request waits for batch-mates")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "emulator worker goroutines")
	limbWorkers := flag.Int("limb-workers", 0, "limb-parallel arithmetic workers per operation (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "per-(program,tenant) queue depth before shedding")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request execution timeout")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain deadline")
	clusterAddrs := flag.String("cluster", "", "cinnamon-worker addresses: comma-separated within a backend, semicolon-separated between backends (host:port,...;host:port,...); empty = local emulator only")
	requireCluster := flag.Bool("require-cluster", false, "fail typed (503) instead of falling back to the local emulator when no cluster backend can serve")
	heartbeat := flag.Duration("heartbeat", 1*time.Second, "cluster worker heartbeat interval (0 disables; redials back off with jitter)")
	sessionLog := flag.String("session-log", "", "durable session checkpoint log path; replayed at boot (empty = sessions are memory-only)")
	bootstrapOn := flag.Bool("bootstrap", false, "enable the bootstrapping service (sparse-secret parameters; serves deeper-than-chain programs and sessions)")
	bsBatch := flag.Int("bootstrap-batch", 8, "max ciphertexts per shared bootstrap tick")
	bsWait := flag.Duration("bootstrap-wait", 25*time.Millisecond, "max time a bootstrap tick waits for company")
	sessionTTL := flag.Duration("session-ttl", 5*time.Minute, "idle encrypted-session eviction deadline")
	keyBudgetMB := flag.Int64("key-budget-mb", 0, "resident tenant eval-key budget in MiB (0 = unbounded); over budget, LRU tenants spill to the key store and reload on demand")
	keySpillDir := flag.String("key-spill-dir", "", "directory for spilled key bundles (empty = a fresh temp dir; only used with -key-budget-mb)")
	flag.Parse()

	o := options{
		addr: *addr, logN: *logN, levels: *levels, seed: *seed,
		maxBatch: *maxBatch, batchWait: *batchWait, workers: *workers,
		limbWorkers: *limbWorkers, queue: *queue, timeout: *timeout,
		drain: *drain, clusterAddrs: *clusterAddrs,
		requireCluster: *requireCluster, heartbeat: *heartbeat,
		sessionLog: *sessionLog,
		bootstrap:  *bootstrapOn, bsBatch: *bsBatch, bsWait: *bsWait,
		sessionTTL:  *sessionTTL,
		keyBudgetMB: *keyBudgetMB, keySpillDir: *keySpillDir,
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

type options struct {
	addr                 string
	logN, levels         int
	seed                 int64
	maxBatch             int
	batchWait            time.Duration
	workers, limbWorkers int
	queue                int
	timeout, drain       time.Duration
	clusterAddrs         string
	requireCluster       bool
	heartbeat            time.Duration
	sessionLog           string
	bootstrap            bool
	bsBatch              int
	bsWait               time.Duration
	sessionTTL           time.Duration
	keyBudgetMB          int64
	keySpillDir          string
}

func spillDirLabel(dir string) string {
	if dir == "" {
		return "a temp dir"
	}
	return dir
}

func run(o options) error {
	lit := workloads.ServeParamsLiteral(o.logN, o.levels, o.seed)
	regCfg := serve.RegistryConfig{
		Literal:        lit,
		MaxBatch:       o.maxBatch,
		KeyBudgetBytes: o.keyBudgetMB << 20,
		KeySpillDir:    o.keySpillDir,
	}
	if o.keyBudgetMB > 0 {
		log.Printf("tenant key budget: %d MiB resident, spilling to %s", o.keyBudgetMB, spillDirLabel(o.keySpillDir))
	}
	if o.bootstrap {
		// The sparse-secret literal: same chain, HammingWeight set so the
		// bootstrap EvalMod interval bound holds. Clients rebuild it from
		// GET /v1/params like any other parameter set.
		regCfg.Literal = workloads.ServeBootstrapParamsLiteral(o.logN, o.levels, o.seed)
		cfg := bootstrap.DefaultConfig()
		regCfg.Bootstrap = &cfg
	}
	log.Printf("compiling serve catalog (logN=%d levels=%d seed=%d maxBatch=%d bootstrap=%v)...", o.logN, o.levels, o.seed, o.maxBatch, o.bootstrap)
	start := time.Now()
	reg, err := serve.NewRegistry(regCfg)
	if err != nil {
		return err
	}
	for _, name := range reg.ProgramNames() {
		p, _ := reg.Program(name)
		if p.Bootstrapped {
			log.Printf("  program %-8s scheduler path, %d bootstraps/run, keys=%d, outLevel=%d", name, p.BootstrapsRequired, len(p.RequiredKeys), p.OutLevel)
			continue
		}
		log.Printf("  program %-8s batches=%v keys=%v outLevel=%d", name, p.BatchSizes(), p.RequiredKeys, p.OutLevel)
	}
	for _, reason := range reg.Skipped {
		log.Printf("  skipped %s (raise -levels/-logn to serve it)", reason)
	}
	if reg.Pre != nil {
		log.Printf("bootstrap service: circuit consumes %d levels, exit level %d", reg.Pre.Consumed(), reg.Pre.ExitLevel())
	}
	log.Printf("catalog ready in %v", time.Since(start).Round(time.Millisecond))

	var backends []serve.BackendSpec
	if o.clusterAddrs != "" {
		groups := strings.Split(o.clusterAddrs, ";")
		engOpts := cluster.Options{HeartbeatInterval: o.heartbeat}
		if len(groups) > 1 {
			// Multiple failure domains: each must fail typed so the serving
			// layer can move the request to a survivor, and a restart must
			// come up even while one domain is entirely dead (its links stay
			// down until the heartbeat loop redials them).
			engOpts.DisableFallback = true
			engOpts.AllowDegradedStart = true
		}
		for gi, group := range groups {
			var dialers []cluster.Dialer
			for _, a := range strings.Split(group, ",") {
				if a = strings.TrimSpace(a); a != "" {
					dialers = append(dialers, cluster.TCPDialer{Addr: a})
				}
			}
			if len(dialers) == 0 {
				return fmt.Errorf("-cluster backend %d has no worker addresses in %q", gi, group)
			}
			name := fmt.Sprintf("c%d", gi)
			log.Printf("connecting backend %s: %d cluster workers...", name, len(dialers))
			eng, err := cluster.NewEngine(reg.Params, dialers, engOpts)
			if err != nil {
				return fmt.Errorf("cluster backend %s startup: %w", name, err)
			}
			defer eng.Close()
			log.Printf("backend %s up: %d workers, limb partition chip=j%%%d", name, eng.NChips(), eng.NChips())
			backends = append(backends, serve.BackendSpec{Name: name, Engine: eng})
		}
	}

	core, err := serve.NewDurableCore(reg, serve.Config{
		MaxBatch:       o.maxBatch,
		BatchWait:      o.batchWait,
		Workers:        o.workers,
		LimbWorkers:    o.limbWorkers,
		QueueDepth:     o.queue,
		RequestTimeout: o.timeout,
		Backends:       backends,
		RequireCluster: o.requireCluster,
		SessionLog:     o.sessionLog,
		BootstrapBatch: o.bsBatch,
		BootstrapWait:  o.bsWait,
		SessionTTL:     o.sessionTTL,
	})
	if err != nil {
		return err
	}
	if o.sessionLog != "" {
		if n := core.Metrics().Snapshot().SessionRestores; n > 0 {
			log.Printf("session log %s: restored %d session(s)", o.sessionLog, n)
		} else {
			log.Printf("session log %s: no sessions to restore", o.sessionLog)
		}
	}

	srv := &http.Server{Addr: o.addr, Handler: serve.NewHandler(core, serve.HandlerConfig{})}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving on %s", o.addr)
		errCh <- srv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		log.Printf("%v: draining (deadline %v)...", sig, o.drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	// Stop accepting new connections first, then drain queued requests.
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	if err := core.Close(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	snap := core.Metrics().Snapshot()
	log.Printf("done: %d completed, %d rejected, %d errors, avg batch occupancy %.2f",
		snap.Completed, snap.Rejected, snap.Errors, snap.AvgBatchOccupancy)
	return nil
}
