// Command experiments regenerates the paper's tables and figures
// (Appendix A workflow): every artifact of the evaluation section is
// produced from the simulator, architecture model and workload
// compositions in this repository.
//
// Usage:
//
//	experiments -exp all            # everything (several minutes)
//	experiments -exp table2         # Table 2 + Figs 11/12/15
//	experiments -exp fig13 -quick   # reduced sweeps
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cinnamon/internal/report"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, fig1, table1, table3, table2, fig11, fig12, fig15, fig13, fig14, fig16, fig6")
	quick := flag.Bool("quick", false, "reduced sweeps for faster runs")
	flag.Parse()
	if err := run(strings.ToLower(*exp), *quick); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run(exp string, quick bool) error {
	want := func(names ...string) bool {
		if exp == "all" {
			return true
		}
		for _, n := range names {
			if exp == n {
				return true
			}
		}
		return false
	}
	if want("fig1") {
		fmt.Println(report.Fig1())
	}
	if want("table1") {
		fmt.Println(report.Table1())
	}
	if want("table3") {
		fmt.Println(report.Table3())
	}
	var pr *report.PerfResults
	if want("table2", "fig11", "fig12", "fig15") {
		var err error
		fmt.Println("running performance simulations (Cinnamon-M/4/8/12)...")
		if pr, err = report.RunPerformance(); err != nil {
			return err
		}
		if want("table2") {
			fmt.Println(report.Table2(pr))
		}
		if want("fig11") {
			fmt.Println(report.Fig11(pr))
		}
		if want("fig12") {
			fmt.Println(report.Fig12(pr))
		}
		if want("fig15") {
			fmt.Println(report.Fig15(pr))
		}
	}
	if want("fig13") {
		bws := []float64{256, 512, 1024}
		if quick {
			bws = []float64{256, 1024}
		}
		fmt.Println("running keyswitch comparison sweep...")
		rs, err := report.RunFig13(bws)
		if err != nil {
			return err
		}
		fmt.Println(report.Fig13(rs))
	}
	if want("fig14") {
		fmt.Println("running Bootstrap-13/21 scaling...")
		rs, err := report.RunFig14()
		if err != nil {
			return err
		}
		fmt.Println(report.Fig14(rs))
	}
	if want("fig16") {
		fmt.Println("running sensitivity study...")
		rs, err := report.RunFig16()
		if err != nil {
			return err
		}
		fmt.Println(report.Fig16(rs))
	}
	if want("ablation-bcu") {
		fmt.Println("running BCU sizing ablation...")
		ps, err := report.RunBCUAblation()
		if err != nil {
			return err
		}
		fmt.Println(report.BCUAblation(ps))
	}
	if want("ablation-digits") {
		fmt.Println("running keyswitch digit-count ablation...")
		ps, err := report.RunDigitAblation()
		if err != nil {
			return err
		}
		fmt.Println(report.DigitAblation(ps))
	}
	if want("keyswitch-comparison") {
		fmt.Println("running §7.4 keyswitch comparison (functional)...")
		r, err := report.RunKSComparison(8)
		if err != nil {
			return err
		}
		fmt.Println(report.KSCompare(r))
	}
	if want("fig6") {
		counts := []int{1, 2, 4, 8}
		caches := []float64{64, 128, 256, 1024}
		clusters := []int{4, 8}
		if quick {
			counts = []int{1, 4}
			caches = []float64{256, 1024}
			clusters = []int{4}
		}
		fmt.Println("running cache/compute motivation sweep...")
		ps, err := report.RunFig6(counts, caches, clusters)
		if err != nil {
			return err
		}
		fmt.Println(report.Fig6(ps))
	}
	return nil
}
