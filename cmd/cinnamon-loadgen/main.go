// Command cinnamon-loadgen drives a cinnamon-serve instance with an
// open-loop Poisson arrival process: it discovers the server's CKKS
// parameters, generates and uploads a tenant key bundle, then fires
// encrypted requests at a fixed offered rate regardless of response
// latency (so queueing delay shows up in the measured latencies instead
// of being hidden by client back-pressure). Every response is decrypted
// and checked against a local reference evaluation.
//
// Usage:
//
//	cinnamon-loadgen -url http://localhost:8080 -requests 200 -rate 50
//	cinnamon-loadgen -url http://localhost:8080 -program square -rate 100 -seed 7
//
// Session mode (-sessions > 0) exercises the encrypted-session API
// instead of the open loop: each session seeds the server with one
// encrypted input and then iterates the program server-side, decrypting
// and verifying every step against the iterated plaintext reference:
//
//	cinnamon-loadgen -url http://localhost:8080 -program logreg16-deep -sessions 2 -session-steps 3
//
// Many-tenant churn mode (-tenants > 1) registers N tenants, each with
// its own key bundle, and draws the sending tenant per request — Zipf by
// default, so a hot head stays warm while the tail churns through the
// server's budgeted key cache:
//
//	cinnamon-loadgen -url http://localhost:8080 -tenants 8 -tenant-skew zipf -requests 200
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/cmplx"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"cinnamon/internal/ckks"
	"cinnamon/internal/serve"
	"cinnamon/internal/workloads"
)

func main() {
	url := flag.String("url", "http://localhost:8080", "server base URL")
	tenant := flag.String("tenant", "loadgen", "tenant id to register and send as (many-tenant mode appends -0..N-1)")
	tenants := flag.Int("tenants", 1, "many-tenant churn mode: register this many tenants, each with its own key bundle, and spread the open loop across them")
	tenantSkew := flag.String("tenant-skew", "zipf", "tenant draw distribution in many-tenant mode: zipf (hot head, long cold tail) or uniform")
	program := flag.String("program", "all", "program name, or \"all\" to round-robin the catalog")
	requests := flag.Int("requests", 200, "total requests to send")
	rate := flag.Float64("rate", 50, "offered load, requests/sec (Poisson arrivals)")
	seed := flag.Int64("seed", 1, "load generator RNG seed")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
	verify := flag.Bool("verify", true, "decrypt responses and compare to a local reference evaluation")
	maxSlotErr := flag.Float64("max-slot-err", 0, "slot-error bound for programs without a server-advertised verify_tolerance (0 = report only for those); programs that advertise one are always checked against it")
	maxErrorRate := flag.Float64("max-error-rate", -1, "exit 1 if the error fraction (transport failures + unexpected statuses, shed excluded) exceeds this (negative = report only)")
	sessions := flag.Int("sessions", 0, "session mode: open this many encrypted sessions instead of the open loop")
	sessionSteps := flag.Int("session-steps", 3, "steps per session (step 1 seeds the state, later steps iterate it server-side)")
	stepRetries := flag.Int("step-retries", 8, "session mode: retries per step on 5xx/429/connection reset (0 disables)")
	stepBackoff := flag.Duration("step-backoff", 100*time.Millisecond, "session mode: initial retry backoff (doubles, capped at 2s)")
	stepInterval := flag.Duration("step-interval", 0, "session mode: client-side pause between steps (models an iterative client; gives chaos scripts a window to restart the server mid-session)")
	flag.Parse()

	if err := run(*url, *tenant, *program, *tenants, *tenantSkew, *requests, *rate, *seed, *timeout, *verify, *maxSlotErr, *maxErrorRate, *sessions, *sessionSteps, *stepRetries, *stepBackoff, *stepInterval); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

type client struct {
	base   string
	tenant string
	http   *http.Client
	params *ckks.Parameters

	// Key material and encoders are stateful (samplers), so every
	// encrypt/decrypt/reference call serializes on mu. The HTTP wait is
	// outside the lock, so requests still overlap on the wire.
	mu   sync.Mutex
	enc  *ckks.Encoder
	encr *ckks.Encryptor
	decr *ckks.Decryptor
	ev   *ckks.Evaluator

	// bundle is the serialized key bundle as uploaded, kept so a 403 after
	// a server restart (in-memory tenant registry gone, durable sessions
	// kept) can re-register the SAME keys — regenerating would orphan
	// every ciphertext the server still holds.
	bundle []byte
}

type result struct {
	ok        bool
	status    int
	latency   time.Duration
	program   string
	slotErr   float64
	tol       float64 // effective verification tolerance (0 = report only)
	transport error
}

func run(base, tenant, program string, tenants int, tenantSkew string, requests int, rate float64, seed int64, timeout time.Duration, verify bool, maxSlotErr, maxErrorRate float64, sessions, sessionSteps, stepRetries int, stepBackoff, stepInterval time.Duration) error {
	c := &client{base: base, tenant: tenant, http: &http.Client{Timeout: timeout}}

	// Discover parameters and rebuild an identical set locally.
	var lit ckks.ParametersLiteral
	if err := c.getJSON("/v1/params", &lit); err != nil {
		return fmt.Errorf("fetching params: %w", err)
	}
	params, err := ckks.NewParameters(lit)
	if err != nil {
		return fmt.Errorf("rebuilding params: %w", err)
	}
	c.params = params
	fmt.Printf("server params: N=%d, %d levels, scale 2^%d\n", params.N(), params.MaxLevel(), lit.LogScale)

	var infos []serve.ProgramInfo
	if err := c.getJSON("/v1/programs", &infos); err != nil {
		return fmt.Errorf("fetching programs: %w", err)
	}
	var targets []serve.ProgramInfo
	for _, info := range infos {
		if program == "all" || info.Name == program {
			targets = append(targets, info)
		}
	}
	if len(targets) == 0 {
		return fmt.Errorf("no program %q on the server (have %d programs)", program, len(infos))
	}

	// Many-tenant churn mode: N tenants, each with its own independently
	// generated key bundle, with the open loop drawing the sending tenant
	// per request. A Zipf draw gives a hot head and a long cold tail — the
	// shape that exercises a budgeted server-side key cache (hot tenants
	// stay resident, tail tenants churn through spill and prefetch).
	clients := []*client{c}
	if tenants > 1 {
		if sessions > 0 {
			return fmt.Errorf("many-tenant mode (-tenants %d) is open-loop only; use -sessions with a single tenant", tenants)
		}
		if tenantSkew != "zipf" && tenantSkew != "uniform" {
			return fmt.Errorf("unknown -tenant-skew %q (want zipf or uniform)", tenantSkew)
		}
		clients = make([]*client, tenants)
		for i := range clients {
			cl := &client{base: base, tenant: fmt.Sprintf("%s-%d", tenant, i), http: c.http, params: params}
			if err := cl.keygenAndRegister(targets); err != nil {
				return fmt.Errorf("tenant %s: %w", cl.tenant, err)
			}
			clients[i] = cl
		}
	} else if err := c.keygenAndRegister(targets); err != nil {
		return err
	}

	if sessions > 0 {
		if program == "all" || len(targets) != 1 {
			return fmt.Errorf("session mode needs -program naming one program")
		}
		return c.runSessions(targets[0], sessions, sessionSteps, seed, maxSlotErr, stepRetries, stepBackoff, stepInterval)
	}

	// Open loop: arrivals are scheduled by a Poisson process from the
	// seeded RNG; each request runs in its own goroutine so a slow server
	// cannot slow the arrival process down.
	arrivals := rand.New(rand.NewSource(seed))
	payloads := rand.New(rand.NewSource(seed + 1))
	tenantRng := rand.New(rand.NewSource(seed + 2))
	var zipf *rand.Zipf
	if len(clients) > 1 && tenantSkew == "zipf" {
		// Exponent 1.2 over ranks 0..N-1: tenant 0 dominates, the tail is
		// touched rarely enough to go cold under a tight key budget.
		zipf = rand.NewZipf(tenantRng, 1.2, 1, uint64(len(clients)-1))
	}
	perTenant := make([]int, len(clients))
	results := make([]result, requests)
	var wg sync.WaitGroup
	fmt.Printf("sending %d requests at %.0f req/s across %d program(s), %d tenant(s)...\n", requests, rate, len(targets), len(clients))
	start := time.Now()
	for i := 0; i < requests; i++ {
		if rate > 0 {
			time.Sleep(time.Duration(arrivals.ExpFloat64() / rate * float64(time.Second)))
		}
		ti := 0
		if len(clients) > 1 {
			if zipf != nil {
				ti = int(zipf.Uint64())
			} else {
				ti = tenantRng.Intn(len(clients))
			}
		}
		cl := clients[ti]
		info := targets[i%len(targets)]
		payloadSeed := payloads.Int63()
		// Per-program verification tolerance: the server-advertised bound
		// wins (deep tensor circuits accumulate more noise than the toy
		// kernels); -max-slot-err covers programs that advertise none.
		tol := info.VerifyTolerance
		if tol <= 0 {
			tol = maxSlotErr
		}
		perTenant[ti]++
		wg.Add(1)
		go func(i int, cl *client, info serve.ProgramInfo, tol float64) {
			defer wg.Done()
			results[i] = cl.fire(info, payloadSeed, verify, tol)
		}(i, cl, info, tol)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := report(results, elapsed)

	var snap serve.Snapshot
	if err := c.getJSON("/metrics", &snap); err != nil {
		return fmt.Errorf("fetching metrics: %w", err)
	}
	fmt.Printf("\nserver metrics: %d completed, %d rejected, %d timeouts, %d errors\n",
		snap.Completed, snap.Rejected, snap.Timeouts, snap.Errors)
	fmt.Printf("  batches: %d, avg occupancy %.2f requests/run\n", snap.Batches, snap.AvgBatchOccupancy)
	fmt.Printf("  server-side latency: p50 %.2fms  p95 %.2fms  p99 %.2fms\n",
		snap.Latency.P50Ms, snap.Latency.P95Ms, snap.Latency.P99Ms)
	if cl := snap.Cluster; cl != nil {
		fmt.Printf("  cluster: %d/%d workers healthy, %d broadcasts, %d aggregations, %.1f MB sent, %d emulator fallbacks\n",
			cl.Healthy, cl.Workers, cl.Broadcasts, cl.Aggregations, float64(cl.BytesSent)/1e6, snap.EmulatorFallbacks)
	}
	if kc := snap.KeyCache; kc != nil {
		fmt.Printf("  key cache: %d resident + %d spilled tenants, %.1f MB resident (budget %.1f MB), %d hits, %d misses, %d evictions, %d prefetches, %d cold-miss stalls\n",
			kc.ResidentTenants, kc.SpilledTenants, float64(kc.ResidentBytes)/1e6, float64(kc.BudgetBytes)/1e6,
			kc.Hits, kc.Misses, kc.Evictions, kc.PrefetchFires, kc.ColdMissStalls)
	}
	if len(clients) > 1 {
		fmt.Printf("tenant draws (%s):", tenantSkew)
		for i, n := range perTenant {
			fmt.Printf(" %s=%d", clients[i].tenant, n)
		}
		fmt.Println()
	}
	if maxSlotErr > 0 && rep.errors > 0 {
		return fmt.Errorf("verification: %d requests failed outright", rep.errors)
	}
	if len(rep.violations) > 0 {
		return fmt.Errorf("verification: %d responses exceeded their slot-error tolerance (worst: %s at %.2e)",
			len(rep.violations), rep.violations[0].program, rep.violations[0].slotErr)
	}
	if maxErrorRate >= 0 && len(results) > 0 {
		if rate := float64(rep.errors) / float64(len(results)); rate > maxErrorRate {
			return fmt.Errorf("error rate %.4f (%d/%d) exceeds -max-error-rate %.4f",
				rate, rep.errors, len(results), maxErrorRate)
		}
	}
	return nil
}

// stepOutcome is one :step exchange after retries settled.
type stepOutcome struct {
	out     *ckks.Ciphertext
	steps   int // server-reported cumulative step counter
	level   string
	retries int // attempts beyond the first (0 = clean)
}

// retryableStatus: backpressure and server-side failures worth retrying —
// the session survives a 5xx (the step failed or the coordinator
// restarted over its durable log), so a bounded retry rides out failover
// windows and restarts.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// stepWithRetry posts one :step with bounded exponential backoff.
// Connection resets and retryable statuses back off and retry; a 403
// (server restarted: in-memory tenant registry gone, durable session
// kept) re-uploads the original key bundle first. body is replayed
// verbatim on every attempt; nil means iterate the held state.
func (c *client) stepWithRetry(id string, body []byte, maxRetries int, backoff time.Duration) (stepOutcome, error) {
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	var oc stepOutcome
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if attempt > maxRetries {
				return oc, fmt.Errorf("step gave up after %d retries: %w", maxRetries, lastErr)
			}
			time.Sleep(backoff)
			if backoff *= 2; backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
			oc.retries++
		}
		var payload io.Reader
		if body != nil {
			payload = bytes.NewReader(body)
		}
		req, err := http.NewRequest("POST", c.base+"/v1/sessions/"+id+":step", payload)
		if err != nil {
			return oc, err
		}
		resp, err := c.http.Do(req)
		if err != nil {
			lastErr = err // connection reset / refused mid-restart
			continue
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			out, err := ckks.ReadCiphertext(resp.Body, c.params)
			resp.Body.Close()
			if err != nil {
				lastErr = fmt.Errorf("response ciphertext: %w", err)
				continue
			}
			oc.out = out
			oc.level = resp.Header.Get("X-Cinnamon-State-Level")
			fmt.Sscanf(resp.Header.Get("X-Cinnamon-Session-Steps"), "%d", &oc.steps)
			return oc, nil
		case resp.StatusCode == http.StatusForbidden:
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lastErr = fmt.Errorf("%s (re-registering keys)", resp.Status)
			if err := c.registerKeys(); err != nil {
				lastErr = fmt.Errorf("re-registering keys: %w", err)
			}
		case retryableStatus(resp.StatusCode):
			msg, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			lastErr = fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(msg))
		default:
			msg, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			return oc, fmt.Errorf("%s: %s", resp.Status, msg)
		}
	}
}

// runSessions drives the encrypted-session API: create, seed with one
// encrypted input, iterate server-side, decrypt-and-verify every step
// against the iterated plaintext reference, close. Steps that hit a
// failover window or a coordinator restart are retried with bounded
// backoff and their verification is reported separately (a resumed
// session must verify exactly like an uninterrupted one). Any violation
// or exhausted step exits nonzero.
func (c *client) runSessions(info serve.ProgramInfo, sessions, steps int, seed int64, maxSlotErr float64, stepRetries int, stepBackoff, stepInterval time.Duration) error {
	spec, ok := workloads.ServeWorkloadByName(info.Name)
	if !ok || spec.EvalPlain == nil {
		return fmt.Errorf("session mode needs a plaintext reference for %q (EvalPlain)", info.Name)
	}
	tol := info.VerifyTolerance
	if tol <= 0 {
		tol = maxSlotErr
	}
	fmt.Printf("running %d session(s) of %q, %d steps each (tol %.1e, %d retries/step)...\n", sessions, info.Name, steps, tol, stepRetries)
	violations := 0
	resumedSteps, resumedViolations := 0, 0
	for s := 0; s < sessions; s++ {
		rng := rand.New(rand.NewSource(seed + int64(s)))
		var v []complex128
		if spec.MakeInput != nil {
			v = spec.MakeInput(rng, c.params.Slots())
		} else {
			v = make([]complex128, c.params.Slots())
			for i := range v {
				v[i] = complex(rng.Float64()*2-1, 0)
			}
		}

		var created serve.SessionInfo
		body, _ := json.Marshal(map[string]string{"tenant": c.tenant, "program": info.Name})
		resp, err := c.http.Post(c.base+"/v1/sessions", "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("session create: %w", err)
		}
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			return fmt.Errorf("session create: %s: %s", resp.Status, msg)
		}
		if err := json.Unmarshal(msg, &created); err != nil {
			return fmt.Errorf("session create: %w", err)
		}

		c.mu.Lock()
		var ct *ckks.Ciphertext
		pt, err := c.enc.Encode(v, c.params.MaxLevel(), c.params.DefaultScale())
		if err == nil {
			ct, err = c.encr.Encrypt(pt)
		}
		c.mu.Unlock()
		if err != nil {
			return fmt.Errorf("session %d: encrypt: %w", s, err)
		}

		var seedBody bytes.Buffer
		if err := ct.Write(&seedBody); err != nil {
			return err
		}
		ref := v
		refSteps := 0
		for step := 1; step <= steps; step++ {
			if step > 1 && stepInterval > 0 {
				time.Sleep(stepInterval)
			}
			// Step 1 seeds the state; later steps send an empty body to
			// iterate the ciphertext the server already holds.
			var body []byte
			if step == 1 {
				body = seedBody.Bytes()
			}
			t0 := time.Now()
			oc, err := c.stepWithRetry(created.ID, body, stepRetries, stepBackoff)
			if err != nil {
				return fmt.Errorf("session %d step %d: %w", s, step, err)
			}
			// Reconcile the reference with the server's cumulative step
			// counter: a retried step may have executed server-side before
			// its response was lost, so the held state can be ahead of the
			// client's loop index. A seeded step (re)sets the state to one
			// application of the input regardless of how often it retried;
			// an empty-body step applies the program once per server-side
			// execution.
			if body != nil {
				ref = spec.EvalPlain(v)
				refSteps = oc.steps
			} else {
				for ; refSteps < oc.steps; refSteps++ {
					ref = spec.EvalPlain(ref)
				}
			}
			c.mu.Lock()
			got, err := c.decode(oc.out)
			c.mu.Unlock()
			if err != nil {
				return fmt.Errorf("session %d step %d: decrypt: %w", s, step, err)
			}
			var worst float64
			for i := range got {
				if e := cmplx.Abs(got[i] - ref[i]); e > worst {
					worst = e
				}
			}
			status := "ok"
			if tol > 0 && worst > tol {
				status = "VIOLATION"
				violations++
			}
			if oc.retries > 0 {
				resumedSteps++
				if status == "VIOLATION" {
					resumedViolations++
				}
				status += fmt.Sprintf(", resumed after %d retries", oc.retries)
			}
			fmt.Printf("  session %d step %d: level %s, slot err %.2e (%s, %v)\n",
				s, step, oc.level, worst, status, time.Since(t0).Round(time.Millisecond))
		}
		req, _ := http.NewRequest("DELETE", c.base+"/v1/sessions/"+created.ID, nil)
		if resp, err := c.http.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}

	var snap serve.Snapshot
	if err := c.getJSON("/metrics", &snap); err != nil {
		return fmt.Errorf("fetching metrics: %w", err)
	}
	fmt.Printf("\nserver metrics: %d session steps, %d bootstraps in %d ticks\n",
		snap.SessionSteps, snap.Bootstraps, snap.BootstrapBatches)
	if snap.BootstrapMs != nil {
		fmt.Printf("  bootstrap tick: p50 %.0fms  p99 %.0fms, sizes %v\n", snap.BootstrapMs.P50Ms, snap.BootstrapMs.P99Ms, snap.BootstrapBatchSize)
	}
	if snap.Failovers > 0 || snap.SessionRestores > 0 {
		fmt.Printf("  failure domains: %d failovers, %d sessions restored from checkpoint log\n", snap.Failovers, snap.SessionRestores)
	}
	// Resumed-step verification is the durability headline: steps that
	// rode out a failover or restart must decrypt exactly as clean ones.
	if resumedSteps > 0 {
		fmt.Printf("resumed-step verification: %d steps recovered after retries, %d violations\n", resumedSteps, resumedViolations)
	}
	if violations > 0 {
		return fmt.Errorf("verification: %d session steps exceeded tolerance %.1e (%d on resumed steps)", violations, tol, resumedViolations)
	}
	return nil
}

// keygenAndRegister generates a fresh tenant key set covering every key
// the target programs require and uploads it.
func (c *client) keygenAndRegister(targets []serve.ProgramInfo) error {
	rotSet := map[int]bool{}
	needConj := false
	for _, info := range targets {
		for _, id := range info.RequiredKeys {
			var k int
			if _, err := fmt.Sscanf(id, "rot:%d", &k); err == nil {
				rotSet[k] = true
			} else if id == "conj" {
				needConj = true
			}
		}
	}
	rots := make([]int, 0, len(rotSet))
	for k := range rotSet {
		rots = append(rots, k)
	}
	sort.Ints(rots)

	kg := ckks.NewKeyGenerator(c.params)
	sk, err := kg.GenSecretKey()
	if err != nil {
		return err
	}
	pk, err := kg.GenPublicKey(sk)
	if err != nil {
		return err
	}
	rlk, err := kg.GenRelinKey(sk)
	if err != nil {
		return err
	}
	rtks, err := kg.GenRotationKeySet(sk, rots, needConj)
	if err != nil {
		return err
	}
	keys := map[string]*ckks.EvalKey{"rlk": rlk}
	for k, key := range rtks.Keys {
		keys[fmt.Sprintf("rot:%d", k)] = key
	}
	if rtks.Conj != nil {
		keys["conj"] = rtks.Conj
	}

	c.enc = ckks.NewEncoder(c.params)
	c.encr = ckks.NewEncryptor(c.params, pk)
	c.decr = ckks.NewDecryptor(c.params, sk)
	c.ev = ckks.NewEvaluator(c.params, rlk, rtks)

	var bundle bytes.Buffer
	if err := serve.WriteKeyBundle(&bundle, keys); err != nil {
		return err
	}
	c.bundle = bundle.Bytes()
	if err := c.registerKeys(); err != nil {
		return err
	}
	fmt.Printf("registered tenant %q with %d evaluation keys (%.1f MB)\n",
		c.tenant, len(keys), float64(len(c.bundle))/1e6)
	return nil
}

// registerKeys uploads the stored key bundle (idempotent: the registry is
// content-addressed downstream, and re-uploading after a server restart
// restores the tenant without changing key material).
func (c *client) registerKeys() error {
	resp, err := c.http.Post(c.base+"/v1/tenants/"+c.tenant+"/keys", "application/octet-stream", bytes.NewReader(c.bundle))
	if err != nil {
		return fmt.Errorf("registering keys: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("registering keys: %s: %s", resp.Status, msg)
	}
	return nil
}

// fire sends one encrypted request and (optionally) verifies the
// decrypted response: against the catalog's plaintext reference when the
// program has one (tensor models — no crypto in the ground truth), else
// against the local homomorphic reference evaluation.
func (c *client) fire(info serve.ProgramInfo, seed int64, verify bool, tol float64) result {
	spec, hasSpec := workloads.ServeWorkloadByName(info.Name)
	rng := rand.New(rand.NewSource(seed))
	var v []complex128
	if hasSpec && spec.MakeInput != nil {
		// Programs with packing requirements (replicated block layouts)
		// draw a well-formed input instead of slot noise.
		v = spec.MakeInput(rng, c.params.Slots())
	} else {
		v = make([]complex128, c.params.Slots())
		for i := range v {
			v[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		}
	}

	c.mu.Lock()
	pt, err := c.enc.Encode(v, c.params.MaxLevel(), c.params.DefaultScale())
	if err != nil {
		c.mu.Unlock()
		return result{transport: err}
	}
	ct, err := c.encr.Encrypt(pt)
	c.mu.Unlock()
	if err != nil {
		return result{transport: err}
	}

	var body bytes.Buffer
	if err := ct.Write(&body); err != nil {
		return result{transport: err}
	}
	req, err := http.NewRequest("POST", c.base+"/v1/programs/"+info.Name+":run", &body)
	if err != nil {
		return result{transport: err}
	}
	req.Header.Set("X-Cinnamon-Tenant", c.tenant)

	t0 := time.Now()
	resp, err := c.http.Do(req)
	latency := time.Since(t0)
	if err != nil {
		return result{transport: err, latency: latency}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return result{status: resp.StatusCode, latency: latency}
	}
	out, err := ckks.ReadCiphertext(resp.Body, c.params)
	if err != nil {
		return result{transport: fmt.Errorf("response ciphertext: %w", err), latency: latency}
	}

	res := result{ok: true, status: resp.StatusCode, latency: latency, program: info.Name, tol: tol}
	if verify {
		if !hasSpec {
			res.transport = fmt.Errorf("no local reference for %q", info.Name)
			res.ok = false
			return res
		}
		c.mu.Lock()
		defer c.mu.Unlock()
		var ref []complex128
		if spec.EvalPlain != nil {
			// Decrypt-and-verify against the plaintext reference.
			ref = spec.EvalPlain(v)
		} else {
			want, err := spec.Reference(c.ev, c.enc, ct)
			if err != nil {
				res.transport, res.ok = err, false
				return res
			}
			if ref, err = c.decode(want); err != nil {
				res.transport, res.ok = err, false
				return res
			}
		}
		got, err := c.decode(out)
		if err != nil {
			res.transport, res.ok = err, false
			return res
		}
		for i := range got {
			if e := cmplx.Abs(got[i] - ref[i]); e > res.slotErr {
				res.slotErr = e
			}
		}
	}
	return res
}

// decode decrypts and decodes; the caller holds c.mu.
func (c *client) decode(ct *ckks.Ciphertext) ([]complex128, error) {
	pt, err := c.decr.Decrypt(ct)
	if err != nil {
		return nil, err
	}
	return c.enc.Decode(pt, c.params.Slots())
}

func (c *client) getJSON(path string, v any) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// reportSummary buckets the run's outcomes. Latency quantiles are
// computed over successful responses only; sheds (429/503 backpressure)
// and errors (transport failures, unexpected statuses) are counted in
// their own buckets so a failing server cannot skew — or fabricate — the
// latency distribution.
type reportSummary struct {
	ok       int
	shed     int
	errors   int // transport failures + unexpected HTTP statuses
	worstErr float64
	// violations are verified responses whose slot error exceeded their
	// per-program tolerance, worst first.
	violations []result
}

func report(results []result, elapsed time.Duration) reportSummary {
	var rep reportSummary
	var lats []time.Duration
	errTransport, errHTTP := 0, map[int]int{}
	perProg := map[string]*result{}
	for i, r := range results {
		switch {
		case r.ok:
			rep.ok++
			lats = append(lats, r.latency)
			if r.slotErr > rep.worstErr {
				rep.worstErr = r.slotErr
			}
			if w := perProg[r.program]; w == nil || r.slotErr > w.slotErr {
				perProg[r.program] = &results[i]
			}
			if r.tol > 0 && r.slotErr > r.tol {
				rep.violations = append(rep.violations, r)
			}
		case r.status == http.StatusTooManyRequests || r.status == http.StatusServiceUnavailable:
			rep.shed++
		default:
			rep.errors++
			if r.transport != nil {
				errTransport++
				if errTransport <= 5 {
					fmt.Printf("  request failed: %v\n", r.transport)
				}
			} else {
				errHTTP[r.status]++
			}
		}
	}
	fmt.Printf("\n%d requests in %v: %d ok, %d shed, %d errors\n", len(results), elapsed.Round(time.Millisecond), rep.ok, rep.shed, rep.errors)
	if rep.errors > 0 {
		fmt.Printf("errors (excluded from latency quantiles): %d transport", errTransport)
		for status, n := range errHTTP {
			fmt.Printf(", %d HTTP %d", n, status)
		}
		fmt.Println()
	}
	if elapsed > 0 {
		fmt.Printf("goodput: %.1f req/s\n", float64(rep.ok)/elapsed.Seconds())
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		q := func(p float64) time.Duration {
			i := int(math.Ceil(p*float64(len(lats)))) - 1
			if i < 0 {
				i = 0
			}
			return lats[i]
		}
		fmt.Printf("client latency (ok only): p50 %v  p95 %v  p99 %v  max %v\n",
			q(0.50).Round(10*time.Microsecond), q(0.95).Round(10*time.Microsecond),
			q(0.99).Round(10*time.Microsecond), lats[len(lats)-1].Round(10*time.Microsecond))
	}
	fmt.Printf("worst slot error vs reference: %.2e\n", rep.worstErr)
	progs := make([]string, 0, len(perProg))
	for name := range perProg {
		progs = append(progs, name)
	}
	sort.Strings(progs)
	for _, name := range progs {
		w := perProg[name]
		bound := "report only"
		if w.tol > 0 {
			bound = fmt.Sprintf("tol %.1e", w.tol)
		}
		fmt.Printf("  %-10s worst %.2e (%s)\n", name, w.slotErr, bound)
	}
	sort.Slice(rep.violations, func(i, j int) bool { return rep.violations[i].slotErr > rep.violations[j].slotErr })
	return rep
}
