// Command cinnamon-worker runs one chip of the scale-out cluster runtime:
// a worker process that owns a modular slice of every ciphertext's limbs
// (chip c owns limbs j with j % nChips == c) and executes its side of the
// paper's keyswitch collectives — absorbing broadcast digits for input
// broadcast, and computing scattered inner-product partials for
// aggregate-and-scatter.
//
// Workers are stateless between connections: the coordinator pushes
// parameters via handshake digest negotiation and evaluation keys lazily,
// so a worker can be restarted at any time and rejoin the cluster on the
// coordinator's next reconnect.
//
// Usage:
//
//	cinnamon-worker -addr :9101 -logn 8 -levels 3 -seed 20260805
//
// The parameter flags must match the coordinator's (cinnamon-serve or
// cinnamon-cluster); mismatches are rejected at handshake by params
// digest.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"cinnamon/internal/ckks"
	"cinnamon/internal/cluster"
	"cinnamon/internal/workloads"
)

func main() {
	addr := flag.String("addr", ":9101", "listen address")
	logN := flag.Int("logn", 8, "ring degree log2 (must match coordinator)")
	levels := flag.Int("levels", 3, "multiplicative levels (must match coordinator)")
	seed := flag.Int64("seed", 20260805, "parameter generation seed (must match coordinator)")
	keyBudgetMB := flag.Int64("key-budget-mb", 0, "resident pushed-key budget per session in MiB (0 = unbounded); LRU keys drop and are re-pushed by the coordinator on next use")
	flag.Parse()

	if err := run(*addr, *logN, *levels, *seed, *keyBudgetMB); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run(addr string, logN, levels int, seed, keyBudgetMB int64) error {
	params, err := ckks.NewParameters(workloads.ServeParamsLiteral(logN, levels, seed))
	if err != nil {
		return err
	}
	w := cluster.NewWorker(params)
	w.KeyBudgetBytes = keyBudgetMB << 20
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("worker up on %s (logN=%d levels=%d digest=%#x)", ln.Addr(), logN, levels, cluster.ParamsDigest(params))
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		go func(c net.Conn) {
			defer c.Close()
			if err := w.Serve(c); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("session %s: %v", c.RemoteAddr(), err)
			} else {
				log.Printf("session %s: closed", c.RemoteAddr())
			}
		}(conn)
	}
}
