// Command cinnamon-chaos is the chaos soak: it boots the full scale-out
// serving stack in one process — three cluster workers, chaos-wrapped
// transports, the batching core — drives verified encrypted load through a
// deterministic fault schedule, and asserts the failure-model invariants:
//
//  1. No response ever decrypts wrong (bit flips are caught by the frame
//     CRC, never served).
//  2. Every injected fault resolves typed: retried transparently,
//     degraded-and-counted, or shed with a retryable error — never an
//     untyped failure, never a panic.
//  3. After faults stop, the cluster returns to fully healthy within one
//     heartbeat interval (plus RPC drain), and verified traffic flows.
//
// The schedule is a pure function of -seed, so a failing run replays
// exactly:
//
//	cinnamon-chaos -seed 1 -duration 20s
//	cinnamon-chaos -seed 1 -duration 5s -profile corrupt   # bit-flips only
//
// -mode domains switches to the failure-domain soak: two independent
// worker clusters behind one durable serving core, kill the primary
// cluster whole under load (traffic must fail over within budget, zero
// wrong decrypts), fail back, then restart the coordinator mid-session
// and assert the session resumes bit-identically from its checkpoint log:
//
//	cinnamon-chaos -mode domains -clusters 2 -phase-load 3s
//
// Exit status is 0 only if every invariant held and (in soak mode) at
// least -min-faults faults were injected; the final line of output is a
// JSON report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"cinnamon/internal/chaos"
)

func main() {
	seed := flag.Int64("seed", 1, "fault schedule seed (same seed replays the same run)")
	duration := flag.Duration("duration", 20*time.Second, "chaos-phase duration")
	workers := flag.Int("workers", 3, "in-process cluster workers (per cluster in -mode domains)")
	concurrency := flag.Int("concurrency", 3, "closed-loop load clients")
	profile := flag.String("profile", "all", "fault profile: all | corrupt (bit-flips only)")
	heartbeat := flag.Duration("heartbeat", 250*time.Millisecond, "engine heartbeat interval")
	minFaults := flag.Int64("min-faults", 100, "minimum injected faults for a passing run")
	jsonOnly := flag.Bool("json", false, "suppress progress lines, print only the JSON report")
	mode := flag.String("mode", "soak", "soak (frame-level faults) | domains (whole-cluster kills + coordinator restart)")
	clusters := flag.Int("clusters", 2, "independent worker clusters (-mode domains)")
	phaseLoad := flag.Duration("phase-load", 3*time.Second, "verified load per kill phase (-mode domains)")
	flag.Parse()

	logf := func(string, ...any) {}
	if !*jsonOnly {
		logf = log.New(os.Stderr, "chaos: ", log.Ltime).Printf
	}

	switch *mode {
	case "soak":
	case "domains":
		runDomains(chaos.DomainConfig{
			Seed:      *seed,
			Clusters:  *clusters,
			Workers:   *workers,
			PhaseLoad: *phaseLoad,
			Heartbeat: *heartbeat,
			Logf:      logf,
		})
		return
	default:
		fmt.Fprintf(os.Stderr, "error: unknown -mode %q (want soak or domains)\n", *mode)
		os.Exit(2)
	}

	cfg := chaos.SoakConfig{
		Seed:        *seed,
		Duration:    *duration,
		Workers:     *workers,
		Concurrency: *concurrency,
		Heartbeat:   *heartbeat,
		Logf:        logf,
	}

	allKinds := false
	switch *profile {
	case "all":
		cfg.Rates = chaos.DefaultRates()
		allKinds = true
	case "corrupt":
		cfg.Rates = chaos.Rates{BitFlip: 0.15}
	default:
		fmt.Fprintf(os.Stderr, "error: unknown -profile %q (want all or corrupt)\n", *profile)
		os.Exit(2)
	}

	rep, err := chaos.RunSoak(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	out, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Println(string(out))

	violations := rep.Violations(*minFaults, allKinds)
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "FAIL:", v)
	}
	if len(violations) > 0 {
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "PASS: %d faults injected, %d/%d requests ok, 0 wrong results, recovered in %v\n",
		rep.TotalFaults, rep.OK, rep.Requests, rep.RecoveryTime.Round(time.Millisecond))
}

func runDomains(cfg chaos.DomainConfig) {
	rep, err := chaos.RunDomainSoak(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	out, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Println(string(out))
	violations := rep.Violations()
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "FAIL:", v)
	}
	if len(violations) > 0 {
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "PASS: %d/%d requests ok, 0 wrong results, failover %v (budget %v), session resumed bit-exact across restart\n",
		rep.OK, rep.Requests, rep.FailoverTime.Round(time.Millisecond), rep.FailoverBudget)
}
