// Command cinnamon-sim runs the cycle-level scale-out simulator on a
// built-in workload under a configurable hardware configuration and prints
// timing and utilization — the quickest way to explore the design space
// without the full experiment harness.
//
// Usage:
//
//	cinnamon-sim -workload bootstrap13 -chips 8
//	cinnamon-sim -workload bootstrap21 -chips 12 -linkbw 512 -membw 4096
package main

import (
	"flag"
	"fmt"
	"os"

	"cinnamon/internal/workloads"
)

func main() {
	workload := flag.String("workload", "bootstrap13", "bootstrap13, bootstrap21, matmul")
	chips := flag.Int("chips", 4, "number of chips")
	linkBW := flag.Float64("linkbw", 0, "per-link bandwidth GB/s (0 = default 256)")
	memBW := flag.Float64("membw", 0, "HBM bandwidth GB/s (0 = default 2048)")
	regMB := flag.Float64("regmb", 0, "register file MB (0 = default 56)")
	flag.Parse()
	if err := run(*workload, *chips, *linkBW, *memBW, *regMB); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run(workload string, chips int, linkBW, memBW, regMB float64) error {
	cfg := workloads.DefaultSimConfig(chips)
	if linkBW > 0 {
		cfg.Chip.LinkGBps = linkBW
	}
	if memBW > 0 {
		cfg.Chip.HBMGBps = memBW
	}
	if regMB > 0 {
		cfg.Chip.RegFileMB = regMB
	}
	mode := workloads.ModeCinnamonPass
	if chips == 1 {
		mode = workloads.ModeSequential
	}
	var res *workloads.KernelResult
	var err error
	switch workload {
	case "bootstrap13":
		res, err = workloads.CompileAndSimulate(workloads.Bootstrap13().BuildProgram, chips, mode, cfg)
	case "bootstrap21":
		res, err = workloads.CompileAndSimulate(workloads.Bootstrap21().BuildProgram, chips, mode, cfg)
	case "matmul":
		kt, kerr := workloads.SimulateKernels(chips, mode, cfg)
		if kerr != nil {
			return kerr
		}
		fmt.Printf("matmul kernel: %.3f ms\n", kt.Matmul*1e3)
		return nil
	default:
		return fmt.Errorf("unknown workload %q", workload)
	}
	if err != nil {
		return err
	}
	fmt.Printf("%s on %d chip(s): %.3f ms (%.0f cycles at %g GHz)\n",
		workload, chips, res.Seconds*1e3, res.Sim.Cycles, cfg.Chip.ClockGHz)
	fmt.Printf("utilization: compute %.0f%%, memory %.0f%%, network %.0f%%\n",
		res.Sim.ComputeUtil*100, res.Sim.MemUtil*100, res.Sim.NetUtil*100)
	fmt.Printf("traffic: %.1f MB crossed chip boundaries\n", res.Sim.CommBytes/1e6)
	fmt.Printf("longest instruction stream: %d instructions\n", res.Stats.MaxInstrs)
	return nil
}
