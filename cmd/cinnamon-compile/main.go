// Command cinnamon-compile compiles a built-in Cinnamon DSL workload for a
// chip count and prints the compilation report: keyswitch-pass batches,
// per-chip instruction mix, communication volume, and register pressure —
// the developer-facing face of the compiler stack.
//
// Usage:
//
//	cinnamon-compile -workload bootstrap13 -chips 4
//	cinnamon-compile -workload matmul -chips 8 -mode cifher
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"cinnamon/internal/compiler"
	"cinnamon/internal/dsl"
	"cinnamon/internal/limbir"
	"cinnamon/internal/polyir"
	"cinnamon/internal/workloads"
)

func main() {
	workload := flag.String("workload", "bootstrap13", "bootstrap13, bootstrap21, matmul, rotsum")
	chips := flag.Int("chips", 4, "number of chips")
	mode := flag.String("mode", "cinnamon", "keyswitch mode: cinnamon, ibpass, ib, cifher, sequential")
	regs := flag.Int("regs", 0, "registers per chip (0 = 56MB register file)")
	flag.Parse()
	if err := run(*workload, *chips, *mode, *regs); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run(workload string, chips int, modeName string, regs int) error {
	params, err := workloads.SimParams()
	if err != nil {
		return err
	}
	prog := dsl.NewProgram(dsl.Config{MaxLevel: params.MaxLevel()})
	switch workload {
	case "bootstrap13":
		workloads.Bootstrap13().BuildProgram(prog)
	case "bootstrap21":
		workloads.Bootstrap21().BuildProgram(prog)
	case "matmul":
		s := prog.Stream(0)
		x := s.Input("x", 20)
		s.Output("y", workloads.BSGSMatmul(s, x, 8, 8, "mm"))
	case "rotsum":
		s := prog.Stream(0)
		x := s.Input("x", 20)
		s.Output("y", x.SumRotations([]int{1, 2, 4, 8}))
	default:
		return fmt.Errorf("unknown workload %q", workload)
	}
	g, err := prog.Finish()
	if err != nil {
		return err
	}
	gst := g.Stats()
	fmt.Printf("polynomial IR: %d nodes, %d keyswitches\n", len(g.Nodes), gst.KeySwitches)

	var mode workloads.KSMode
	switch modeName {
	case "cinnamon":
		mode = workloads.ModeCinnamonPass
	case "ibpass":
		mode = workloads.ModeInputBroadcastPass
	case "ib":
		mode = workloads.ModeInputBroadcast
	case "cifher":
		mode = workloads.ModeCiFHER
	case "sequential":
		mode = workloads.ModeSequential
		chips = 1
	default:
		return fmt.Errorf("unknown mode %q", modeName)
	}
	var groups []polyir.BatchGroup
	switch mode {
	case workloads.ModeSequential:
		groups = (&polyir.KeyswitchPass{NChips: 1}).Run(g)
	case workloads.ModeInputBroadcastPass:
		groups = (&polyir.KeyswitchPass{NChips: chips, DisableAggregation: true}).Run(g)
	case workloads.ModeCinnamonPass:
		groups = (&polyir.KeyswitchPass{NChips: chips}).Run(g)
	default:
		// Per-keyswitch singleton groups for the baselines.
		for _, n := range g.Nodes {
			if n.NeedsKeySwitch() {
				alg := polyir.KSInputBroadcast
				if mode == workloads.ModeCiFHER {
					alg = polyir.KSCiFHER
				}
				grp := polyir.BatchGroup{ID: len(groups), Algorithm: alg, Nodes: []*polyir.Node{n}}
				n.KSAlgorithm = alg
				n.KSBatch = grp.ID
				groups = append(groups, grp)
			}
		}
	}
	byAlg := map[polyir.KSAlgorithm]int{}
	for _, grp := range groups {
		byAlg[grp.Algorithm]++
	}
	fmt.Printf("keyswitch pass (%s): %d batch groups (", mode, len(groups))
	algs := make([]int, 0, len(byAlg))
	for a := range byAlg {
		algs = append(algs, int(a))
	}
	sort.Ints(algs)
	for i, a := range algs {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%v: %d", polyir.KSAlgorithm(a), byAlg[polyir.KSAlgorithm(a)])
	}
	fmt.Println(")")
	summary := polyir.Summarize(groups)
	fmt.Printf("collectives after batching: %d broadcasts, %d aggregations\n", summary.Broadcasts, summary.Aggregations)

	mod, err := compiler.Lower(g, params, chips, groups)
	if err != nil {
		return err
	}
	st := mod.Stats()
	fmt.Printf("\nlimb IR (%d chips): longest stream %d instrs, %d limbs crossing chips\n",
		chips, st.MaxInstrs, st.CommLimbs)
	ops := make([]int, 0, len(st.Ops))
	for op := range st.Ops {
		ops = append(ops, int(op))
	}
	sort.Ints(ops)
	for _, op := range ops {
		fmt.Printf("  %-10v %8d\n", limbir.Op(op), st.Ops[limbir.Op(op)])
	}

	if regs == 0 {
		regs = workloads.DefaultSimConfig(chips).Chip.RegFileLimbs(1 << workloads.SimLogN)
	}
	alloc, err := compiler.Allocate(mod, regs)
	if err != nil {
		return err
	}
	spills := 0
	for _, p := range alloc.Chips {
		spills += p.Spills
	}
	fmt.Printf("\nregister allocation (Belady, %d regs/chip): %d spill slots, %d memory ops total\n",
		regs, spills, alloc.Stats().LoadStores)
	return nil
}
