// Command corebench times the core limb-level kernels of the CKKS
// substrate — NTT/INTT, pointwise multiply, base conversion (ModUp /
// ModDown), rescale, automorphism and the full hybrid keyswitch — under
// different limb-parallel worker counts, and writes the results to a JSON
// report (BENCH_core.json).
//
// Usage:
//
//	corebench -out BENCH_core.json -logn 12 -workers 1,4
//	corebench -compare BENCH_core.json -tolerance 0.10
//
// With -compare, the freshly measured numbers are checked against the
// committed baseline report: any hot op slower by more than -tolerance
// (relative, per matching worker count) fails the run with a nonzero exit,
// which is how CI catches performance regressions on the core kernels.
//
// The worker sweep is the software analogue of the paper's limb-level
// parallelism study: the same program, executed over 1 vs W virtual
// workers. Speedups only materialize when the host actually has W cores;
// the report records runtime.NumCPU so single-core CI runs are
// interpretable.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"cinnamon/internal/bootstrap"
	"cinnamon/internal/ckks"
	"cinnamon/internal/parallel"
	"cinnamon/internal/rns"
	"cinnamon/internal/serve"
	"cinnamon/internal/tensor"
	"cinnamon/internal/workloads"
)

type opTiming struct {
	NsPerOp int64 `json:"ns_per_op"`
	Iters   int   `json:"iters"`
}

type workerRun struct {
	Workers int                 `json:"workers"`
	Ops     map[string]opTiming `json:"ops"`
}

type report struct {
	GeneratedBy string  `json:"generated_by"`
	HostCores   int     `json:"host_cores"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	LogN        int     `json:"logn"`
	ChainLimbs  int     `json:"chain_limbs"`
	ExtLimbs    int     `json:"ext_limbs"`
	WallSeconds float64 `json:"wall_seconds"`

	Runs []workerRun `json:"runs"`
	// Speedup[op] = ns/op at workers=1 divided by ns/op at the largest
	// worker count. On a single-core host this hovers around 1.0.
	Speedup map[string]float64 `json:"speedup"`

	// MulMod kernel comparison (ns per element, serial).
	Kernels map[string]float64 `json:"mulmod_kernels_ns_per_elem"`

	// Poly buffer pool: heap allocations per acquire/release cycle vs a
	// fresh NewPoly.
	PoolAllocs map[string]float64 `json:"poly_pool_allocs_per_op"`

	// ServeRPS is end-to-end serving throughput: single `square` requests
	// through the full batcher → worker → emulator pipeline of
	// internal/serve, requests per second. Zero when -serve=false.
	ServeRPS float64 `json:"serve_rps"`

	// ServeManyTenantRPS is the same pipeline under many-tenant key-cache
	// churn: 8 tenants with independent key bundles, a key budget admitting
	// only 2 of them, and Zipf-skewed tenant draws — so hot tenants ride
	// the resident cache while the tail churns through spill reloads and
	// admission-time prefetch. Zero when -serve=false.
	ServeManyTenantRPS float64 `json:"serve_manytenant_rps"`
}

func main() {
	logN := flag.Int("logn", 12, "ring degree log2")
	limbs := flag.Int("limbs", 9, "chain limbs (keyswitch digit count follows the usual hybrid choice)")
	ext := flag.Int("ext", 2, "extension limbs")
	workersFlag := flag.String("workers", "1,4", "comma-separated worker counts to sweep")
	iters := flag.Int("iters", 20, "iterations per heavy op")
	out := flag.String("out", "BENCH_core.json", "output JSON path")
	compare := flag.String("compare", "", "baseline report to regression-check against (exit 1 on regression)")
	tolerance := flag.Float64("tolerance", 0.10, "relative slowdown allowed per op before -compare fails")
	serveBench := flag.Bool("serve", true, "measure end-to-end serving throughput (serve_rps)")
	flag.Parse()

	if err := run(*logN, *limbs, *ext, *workersFlag, *iters, *out, *compare, *tolerance, *serveBench); err != nil {
		fmt.Fprintln(os.Stderr, "corebench:", err)
		os.Exit(1)
	}
}

func run(logN, limbs, ext int, workersFlag string, iters int, out, compare string, tolerance float64, serveBench bool) error {
	start := time.Now()
	var workerCounts []int
	for _, s := range strings.Split(workersFlag, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || w < 1 {
			return fmt.Errorf("bad -workers entry %q", s)
		}
		workerCounts = append(workerCounts, w)
	}

	logQ := make([]int, limbs)
	logQ[0] = 55
	for i := 1; i < limbs; i++ {
		logQ[i] = 45
	}
	logP := make([]int, ext)
	for i := range logP {
		logP[i] = 58
	}
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN: logN, LogQ: logQ, LogP: logP, LogScale: 45, Seed: 20260805,
	})
	if err != nil {
		return err
	}
	kg := ckks.NewKeyGenerator(params)
	sk, err := kg.GenSecretKey()
	if err != nil {
		return err
	}
	pk, err := kg.GenPublicKey(sk)
	if err != nil {
		return err
	}
	rlk, err := kg.GenRelinKey(sk)
	if err != nil {
		return err
	}
	enc := ckks.NewEncoder(params)
	encr := ckks.NewEncryptor(params, pk)
	ev := ckks.NewEvaluator(params, rlk, nil)
	r := params.Ring

	slots := 1 << (logN - 3)
	if slots > 256 {
		slots = 256
	}
	v := make([]complex128, slots)
	for i := range v {
		v[i] = complex(float64(i%7)/7-0.5, float64(i%5)/5-0.5)
	}
	pt, err := enc.Encode(v, params.MaxLevel(), params.DefaultScale())
	if err != nil {
		return err
	}
	ct, err := encr.Encrypt(pt)
	if err != nil {
		return err
	}

	chain := ct.C0.Basis
	p1 := ct.C0.Copy()
	p2 := ct.C1.Copy()
	scratch := r.NewPoly(chain)
	scratch.IsNTT = true
	coeff := ct.C0.Copy()
	if err := r.INTT(coeff); err != nil {
		return err
	}

	// time runs fn n times and returns ns/op; the first (warm-up) call is
	// excluded so pool/cache population doesn't skew small iteration counts.
	timeOp := func(n int, fn func() error) (opTiming, error) {
		if err := fn(); err != nil {
			return opTiming{}, err
		}
		t0 := time.Now()
		for i := 0; i < n; i++ {
			if err := fn(); err != nil {
				return opTiming{}, err
			}
		}
		return opTiming{NsPerOp: time.Since(t0).Nanoseconds() / int64(n), Iters: n}, nil
	}

	gal := r.GaloisElementForRotation(1)
	ops := []struct {
		name string
		fn   func() error
	}{
		{"ntt", func() error { q := coeff.Copy(); return r.NTT(q) }},
		{"intt", func() error { q := p1.Copy(); return r.INTT(q) }},
		{"mulcoeffs", func() error { return r.MulCoeffs(p1, p2, scratch) }},
		{"automorphism", func() error { return r.Automorphism(p1, gal, scratch) }},
		{"modup", func() error {
			e, err := r.ModUp(coeff, params.PBasis)
			if err != nil {
				return err
			}
			r.PutPoly(e)
			return nil
		}},
		{"moddown", func() error {
			e, err := r.ModUp(coeff, params.PBasis)
			if err != nil {
				return err
			}
			d, err := r.ModDown(e, params.PBasis)
			if err != nil {
				return err
			}
			r.PutPoly(e)
			r.PutPoly(d)
			return nil
		}},
		{"rescale", func() error {
			d, err := r.Rescale(coeff)
			if err != nil {
				return err
			}
			r.PutPoly(d)
			return nil
		}},
		{"keyswitch", func() error {
			f0, f1, err := ev.KeySwitch(ct.C1, rlk)
			if err != nil {
				return err
			}
			r.PutPoly(f0)
			r.PutPoly(f1)
			return nil
		}},
	}

	// tensor_matmul: the tensor frontend's 64×64 BSGS matvec end to end —
	// diagonal encodes, 2√d rotation keyswitches, 64 plaintext multiplies
	// and the closing rescale — through the same reference path the
	// cluster serving backend executes.
	{
		mm := tensor.NewModel("corebench_mm", 64)
		mm.Output(mm.MatVec(mm.Input(), "w", 64, 64, tensor.BSGS))
		cmp, err := tensor.Compile(mm)
		if err != nil {
			return err
		}
		rtks, err := kg.GenRotationKeySet(sk, cmp.Rotations(), false)
		if err != nil {
			return err
		}
		evRot := ckks.NewEvaluator(params, rlk, rtks)
		ops = append(ops, struct {
			name string
			fn   func() error
		}{"tensor_matmul", func() error {
			_, err := cmp.Reference(evRot, enc, ct)
			return err
		}})
	}

	// bootstrap: one full CKKS refresh (ScaleUp → ModRaise → CoeffToSlot →
	// EvalMod → SlotToCoeff) on its own sparse-secret parameter set — the
	// pass the serving runtime's bootstrap batcher amortizes across
	// tenants. Small ring (logN=8, 16 levels) for the same reason as the
	// serve gate: this row watches the circuit's constant factors.
	{
		blit := workloads.ServeBootstrapParamsLiteral(8, 16, 20260805)
		bparams, err := ckks.NewParameters(blit)
		if err != nil {
			return err
		}
		pre, err := bootstrap.NewPrecomp(bparams, bootstrap.DefaultConfig())
		if err != nil {
			return err
		}
		bkg := ckks.NewKeyGenerator(bparams)
		bsk, err := bkg.GenSecretKey()
		if err != nil {
			return err
		}
		bpk, err := bkg.GenPublicKey(bsk)
		if err != nil {
			return err
		}
		brlk, err := bkg.GenRelinKey(bsk)
		if err != nil {
			return err
		}
		brtks, err := bkg.GenRotationKeySet(bsk, pre.Rotations(), true)
		if err != nil {
			return err
		}
		bs, err := bootstrap.NewBootstrapperFromKeys(pre, brlk, brtks)
		if err != nil {
			return err
		}
		benc := ckks.NewEncoder(bparams)
		bv := make([]complex128, bparams.Slots())
		for i := range bv {
			bv[i] = complex(float64(i%7)/7-0.5, float64(i%5)/5-0.5)
		}
		bpt, err := benc.Encode(bv, bparams.MaxLevel(), bparams.DefaultScale())
		if err != nil {
			return err
		}
		bct, err := ckks.NewEncryptor(bparams, bpk).Encrypt(bpt)
		if err != nil {
			return err
		}
		low, err := bs.Evaluator().DropLevel(bct, 0)
		if err != nil {
			return err
		}
		ops = append(ops, struct {
			name string
			fn   func() error
		}{"bootstrap", func() error {
			_, err := bs.Bootstrap(low)
			return err
		}})
	}

	rep := report{
		GeneratedBy: "cmd/corebench",
		HostCores:   runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		LogN:        logN,
		ChainLimbs:  limbs,
		ExtLimbs:    ext,
		Speedup:     map[string]float64{},
		Kernels:     map[string]float64{},
		PoolAllocs:  map[string]float64{},
	}

	for _, w := range workerCounts {
		parallel.SetWorkers(w)
		run := workerRun{Workers: w, Ops: map[string]opTiming{}}
		for _, op := range ops {
			n := iters
			if op.name == "tensor_matmul" {
				// A full matvec is ~20 keyswitches plus 64 encodes; a quarter
				// of the iteration budget keeps the sweep's wall time bounded.
				n = (iters + 3) / 4
			}
			if op.name == "bootstrap" {
				// A refresh is hundreds of keyswitches; a tenth of the budget
				// is plenty for a stable ns/op.
				n = (iters + 9) / 10
			}
			t, err := timeOp(n, op.fn)
			if err != nil {
				return fmt.Errorf("%s @%dw: %w", op.name, w, err)
			}
			run.Ops[op.name] = t
		}
		rep.Runs = append(rep.Runs, run)
	}
	parallel.SetWorkers(0) // restore GOMAXPROCS default
	if len(rep.Runs) > 1 {
		base, last := rep.Runs[0], rep.Runs[len(rep.Runs)-1]
		for name, t := range base.Ops {
			if lt, ok := last.Ops[name]; ok && lt.NsPerOp > 0 {
				rep.Speedup[name] = float64(t.NsPerOp) / float64(lt.NsPerOp)
			}
		}
	}

	// Serial per-element kernel comparison on one limb.
	n := 1 << logN
	q := chain.Moduli[0]
	x, y := p1.Limbs[0], p2.Limbs[0]
	dst := make([]uint64, n)
	kern := func(fn func()) float64 {
		fn() // warm-up
		const reps = 50
		t0 := time.Now()
		for i := 0; i < reps; i++ {
			fn()
		}
		return float64(time.Since(t0).Nanoseconds()) / float64(reps*n)
	}
	rep.Kernels["div64"] = kern(func() {
		for i := 0; i < n; i++ {
			dst[i] = rns.MulMod(x[i], y[i], q)
		}
	})
	bp := rns.NewBarrettParams(q)
	rep.Kernels["barrett"] = kern(func() {
		for i := 0; i < n; i++ {
			dst[i] = bp.MulMod(x[i], y[i])
		}
	})
	w0 := y[0]
	ws := rns.ShoupPrecomp(w0, q)
	rep.Kernels["shoup"] = kern(func() {
		for i := 0; i < n; i++ {
			dst[i] = rns.MulModShoup(x[i], w0, ws, q)
		}
	})

	rep.PoolAllocs["new_poly"] = allocsPerOp(func() {
		_ = r.NewPoly(chain)
	})
	rep.PoolAllocs["get_put"] = allocsPerOp(func() {
		p := r.GetPoly(chain)
		r.PutPoly(p)
	})

	if serveBench {
		rps, err := serveRPS(2 * iters)
		if err != nil {
			return fmt.Errorf("serve benchmark: %w", err)
		}
		rep.ServeRPS = rps
		mrps, err := serveManyTenantRPS(2 * iters)
		if err != nil {
			return fmt.Errorf("many-tenant serve benchmark: %w", err)
		}
		rep.ServeManyTenantRPS = mrps
	}

	rep.WallSeconds = time.Since(start).Seconds()
	if compare != "" {
		// Regression-check mode: nothing is written, the measured numbers are
		// judged against the committed baseline.
		return compareReports(rep, compare, tolerance)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (host cores %d, %d worker configs, %.1fs)\n",
		out, rep.HostCores, len(rep.Runs), rep.WallSeconds)
	return nil
}

// serveRPS measures end-to-end serving throughput: a catalog registry
// (compiled keyswitch plans, pooled emulator machines) serving single
// `square` requests back to back through the batcher → worker pipeline of
// internal/serve. Small ring (logN=8, 4 levels) on purpose — this gate
// watches the serving hot path's constant factors and allocation
// discipline, not transform asymptotics, which the per-op rows cover.
func serveRPS(reqs int) (float64, error) {
	lit := workloads.ServeParamsLiteral(8, 4, 20260805)
	reg, err := serve.NewRegistry(serve.RegistryConfig{Literal: lit, MaxBatch: 4})
	if err != nil {
		return 0, err
	}
	params := reg.Params
	kg := ckks.NewKeyGenerator(params)
	sk, err := kg.GenSecretKey()
	if err != nil {
		return 0, err
	}
	pk, err := kg.GenPublicKey(sk)
	if err != nil {
		return 0, err
	}
	rlk, err := kg.GenRelinKey(sk)
	if err != nil {
		return 0, err
	}
	// One key set serving the whole catalog: the union of every compiled
	// program's rotation set.
	rotSet := map[int]bool{}
	for _, name := range reg.ProgramNames() {
		p, _ := reg.Program(name)
		for _, k := range p.Rotations {
			rotSet[k] = true
		}
	}
	rots := make([]int, 0, len(rotSet))
	for k := range rotSet {
		rots = append(rots, k)
	}
	sort.Ints(rots)
	rtks, err := kg.GenRotationKeySet(sk, rots, false)
	if err != nil {
		return 0, err
	}
	keys := map[string]*ckks.EvalKey{"rlk": rlk}
	for k, key := range rtks.Keys {
		keys[fmt.Sprintf("rot:%d", k)] = key
	}
	const tenant = "corebench"
	if err := reg.RegisterTenant(tenant, keys); err != nil {
		return 0, err
	}
	core := serve.NewCore(reg, serve.Config{
		MaxBatch:  1,
		BatchWait: time.Microsecond,
		Workers:   2,
	})
	defer core.Close(context.Background())
	enc := ckks.NewEncoder(params)
	encr := ckks.NewEncryptor(params, pk)
	v := make([]complex128, params.Slots())
	for i := range v {
		v[i] = complex(float64(i%7)/7-0.5, float64(i%5)/5-0.5)
	}
	pt, err := enc.Encode(v, params.MaxLevel(), params.DefaultScale())
	if err != nil {
		return 0, err
	}
	ct, err := encr.Encrypt(pt)
	if err != nil {
		return 0, err
	}
	// Warm the machine pool, plan caches and frame buffers.
	if _, err := core.Submit(context.Background(), "square", tenant, ct); err != nil {
		return 0, err
	}
	t0 := time.Now()
	for i := 0; i < reqs; i++ {
		if _, err := core.Submit(context.Background(), "square", tenant, ct); err != nil {
			return 0, err
		}
	}
	return float64(reqs) / time.Since(t0).Seconds(), nil
}

// serveManyTenantRPS measures serving throughput under key-cache churn:
// 8 tenants, each with its own independently generated key bundle, a key
// budget sized to keep only 2 bundles resident, and a Zipf tenant draw
// per request. Hot tenants should be cache hits; tail tenants force
// evictions, spill reloads and admission-time prefetches — the number
// this row guards is how little that churn costs end to end.
func serveManyTenantRPS(reqs int) (float64, error) {
	lit := workloads.ServeParamsLiteral(8, 4, 20260805)
	params, err := ckks.NewParameters(lit)
	if err != nil {
		return 0, err
	}
	kg := ckks.NewKeyGenerator(params)
	const tenants = 8
	type tenantCrypto struct {
		keys map[string]*ckks.EvalKey
		ct   *ckks.Ciphertext
	}
	enc := ckks.NewEncoder(params)
	v := make([]complex128, params.Slots())
	for i := range v {
		v[i] = complex(float64(i%7)/7-0.5, float64(i%5)/5-0.5)
	}
	tcs := make([]tenantCrypto, tenants)
	var bundleSize int64
	for i := range tcs {
		sk, err := kg.GenSecretKey()
		if err != nil {
			return 0, err
		}
		pk, err := kg.GenPublicKey(sk)
		if err != nil {
			return 0, err
		}
		rlk, err := kg.GenRelinKey(sk)
		if err != nil {
			return 0, err
		}
		tcs[i].keys = map[string]*ckks.EvalKey{"rlk": rlk}
		pt, err := enc.Encode(v, params.MaxLevel(), params.DefaultScale())
		if err != nil {
			return 0, err
		}
		if tcs[i].ct, err = ckks.NewEncryptor(params, pk).Encrypt(pt); err != nil {
			return 0, err
		}
		if i == 0 {
			var buf bytes.Buffer
			if err := serve.WriteKeyBundle(&buf, tcs[i].keys); err != nil {
				return 0, err
			}
			bundleSize = int64(buf.Len())
		}
	}
	spillDir, err := os.MkdirTemp("", "corebench-keyspill-")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(spillDir)
	// Budget of 2.5 bundles: exactly 2 tenants resident, 6 spilled.
	reg, err := serve.NewRegistry(serve.RegistryConfig{
		Literal:        lit,
		MaxBatch:       4,
		KeyBudgetBytes: bundleSize*2 + bundleSize/2,
		KeySpillDir:    spillDir,
	})
	if err != nil {
		return 0, err
	}
	for i := range tcs {
		if err := reg.RegisterTenant(fmt.Sprintf("corebench-%d", i), tcs[i].keys); err != nil {
			return 0, err
		}
	}
	core := serve.NewCore(reg, serve.Config{
		MaxBatch:  1,
		BatchWait: time.Microsecond,
		Workers:   2,
	})
	defer core.Close(context.Background())
	// Warm the machine pool and plan caches with the hottest tenant.
	if _, err := core.Submit(context.Background(), "square", "corebench-0", tcs[0].ct); err != nil {
		return 0, err
	}
	zipf := rand.NewZipf(rand.New(rand.NewSource(20260805)), 1.2, 1, tenants-1)
	t0 := time.Now()
	for i := 0; i < reqs; i++ {
		ti := int(zipf.Uint64())
		if _, err := core.Submit(context.Background(), "square", fmt.Sprintf("corebench-%d", ti), tcs[ti].ct); err != nil {
			return 0, err
		}
	}
	return float64(reqs) / time.Since(t0).Seconds(), nil
}

// compareReports checks every hot op of the fresh report against the
// baseline file: a measured ns/op more than tolerance above the baseline
// (per matching worker count) is a regression and fails the run. Ops the
// baseline lacks are reported as new and skipped.
func compareReports(fresh report, baselinePath string, tolerance float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	baseRuns := map[int]workerRun{}
	for _, r := range base.Runs {
		baseRuns[r.Workers] = r
	}
	var regressions []string
	for _, r := range fresh.Runs {
		br, ok := baseRuns[r.Workers]
		if !ok {
			fmt.Printf("workers=%d: no baseline run, skipping\n", r.Workers)
			continue
		}
		for name, t := range r.Ops {
			bt, ok := br.Ops[name]
			if !ok || bt.NsPerOp <= 0 {
				fmt.Printf("workers=%d %s: new op, no baseline\n", r.Workers, name)
				continue
			}
			ratio := float64(t.NsPerOp) / float64(bt.NsPerOp)
			status := "ok"
			if ratio > 1+tolerance {
				status = "REGRESSION"
				regressions = append(regressions,
					fmt.Sprintf("%s @%dw: %d ns/op vs baseline %d (%.2fx > %.2fx allowed)",
						name, r.Workers, t.NsPerOp, bt.NsPerOp, ratio, 1+tolerance))
			}
			fmt.Printf("workers=%d %-14s %12d ns/op  baseline %12d  ratio %.3f  %s\n",
				r.Workers, name, t.NsPerOp, bt.NsPerOp, ratio, status)
		}
	}
	// Pool allocation counters are near-binary health signals (a warm
	// get/put cycle allocates ~0 times); allow half an allocation of
	// measurement slack over the baseline before calling regression.
	for name, bv := range base.PoolAllocs {
		fv, ok := fresh.PoolAllocs[name]
		if !ok {
			continue
		}
		status := "ok"
		if fv > bv+0.5 {
			status = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("poly_pool_allocs_per_op[%s]: %.2f vs baseline %.2f", name, fv, bv))
		}
		fmt.Printf("pool_allocs    %-14s %8.2f  baseline %8.2f  %s\n", name, fv, bv, status)
	}
	// serve_rps is a throughput (higher is better): the fresh rate must
	// stay within tolerance of the baseline rate.
	switch {
	case base.ServeRPS > 0 && fresh.ServeRPS > 0:
		ratio := base.ServeRPS / fresh.ServeRPS
		status := "ok"
		if ratio > 1+tolerance {
			status = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("serve_rps: %.1f req/s vs baseline %.1f (%.2fx slower > %.2fx allowed)",
					fresh.ServeRPS, base.ServeRPS, ratio, 1+tolerance))
		}
		fmt.Printf("serve_rps      %12.1f req/s   baseline %12.1f  ratio %.3f  %s\n",
			fresh.ServeRPS, base.ServeRPS, ratio, status)
	case base.ServeRPS > 0:
		fmt.Println("serve_rps: baseline present, fresh run skipped (-serve=false)")
	case fresh.ServeRPS > 0:
		fmt.Println("serve_rps: new metric, no baseline")
	}
	// serve_manytenant_rps guards the cost of key-cache churn the same way.
	switch {
	case base.ServeManyTenantRPS > 0 && fresh.ServeManyTenantRPS > 0:
		ratio := base.ServeManyTenantRPS / fresh.ServeManyTenantRPS
		status := "ok"
		if ratio > 1+tolerance {
			status = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("serve_manytenant_rps: %.1f req/s vs baseline %.1f (%.2fx slower > %.2fx allowed)",
					fresh.ServeManyTenantRPS, base.ServeManyTenantRPS, ratio, 1+tolerance))
		}
		fmt.Printf("serve_manytenant_rps %6.1f req/s   baseline %12.1f  ratio %.3f  %s\n",
			fresh.ServeManyTenantRPS, base.ServeManyTenantRPS, ratio, status)
	case base.ServeManyTenantRPS > 0:
		fmt.Println("serve_manytenant_rps: baseline present, fresh run skipped (-serve=false)")
	case fresh.ServeManyTenantRPS > 0:
		fmt.Println("serve_manytenant_rps: new metric, no baseline")
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d op(s) regressed beyond %.0f%% tolerance:\n  %s",
			len(regressions), tolerance*100, strings.Join(regressions, "\n  "))
	}
	fmt.Printf("all ops within %.0f%% of %s\n", tolerance*100, baselinePath)
	return nil
}

// allocsPerOp measures heap allocations per call of fn (single-threaded).
func allocsPerOp(fn func()) float64 {
	const reps = 200
	fn() // warm pools
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < reps; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / reps
}
