module cinnamon

go 1.22
